"""Tests for the group-quantisation extension encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.encodings import GroupQuantEncoding, GroupQuantPolicy


class TestGroupQuant:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_error_bounded_by_half_step(self, bits, rng):
        enc = GroupQuantEncoding(bits, group_size=32)
        x = rng.normal(0, 2, (16, 32)).astype(np.float32)
        d = enc.decode(enc.encode(x))
        levels = (1 << bits) - 1
        for g in range(16):
            row = x[g]
            step = (row.max() - row.min()) / levels
            err = np.abs(d[g] - row).max()
            assert err <= step * 0.51 + 1e-6

    def test_constant_group_exact(self):
        enc = GroupQuantEncoding(2, group_size=8)
        x = np.full((4, 8), 3.25, np.float32)
        np.testing.assert_allclose(enc.decode(enc.encode(x)), x, atol=1e-6)

    def test_extremes_exact(self, rng):
        # Group min and max always land on grid points.
        enc = GroupQuantEncoding(4, group_size=16)
        x = rng.normal(0, 1, (16,)).astype(np.float32)
        d = enc.decode(enc.encode(x))
        assert d.min() == pytest.approx(x.min(), abs=1e-6)
        assert d.max() == pytest.approx(x.max(), abs=1e-6)

    def test_bytes_match_model(self, rng):
        for n in (1, 31, 256, 1000):
            enc = GroupQuantEncoding(4, group_size=64)
            x = rng.normal(0, 1, n).astype(np.float32)
            e = enc.encode(x)
            assert enc.measure_bytes(e) == enc.encoded_bytes(n)

    def test_int4_beats_fp8_bytes(self):
        enc4 = GroupQuantEncoding(4, group_size=256)
        from repro.encodings import dpr_encoding

        n = 1 << 16
        assert enc4.encoded_bytes(n) < dpr_encoding("fp8").encoded_bytes(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupQuantEncoding(3)
        with pytest.raises(ValueError):
            GroupQuantEncoding(4, group_size=0)

    @settings(max_examples=40)
    @given(
        x=hnp.arrays(np.float32,
                     st.integers(1, 300),
                     elements=st.floats(-1e4, 1e4, width=32)),
        bits=st.sampled_from([1, 2, 4, 8]),
    )
    def test_property_shape_and_idempotence(self, x, bits):
        enc = GroupQuantEncoding(bits, group_size=32)
        d = enc.decode(enc.encode(x))
        assert d.shape == x.shape
        d2 = enc.decode(enc.encode(d))
        np.testing.assert_allclose(d2, d, rtol=1e-5, atol=1e-5)


class TestPaddingSkewRegression:
    """The ragged-tail bug: zero padding entering the min/max statistics.

    ``linspace(5, 6, 300)`` at group size 256 leaves a 44-element tail
    group whose real span is ~0.15 — but with a padded zero in the stats
    the grid stretched over [0, 6] and the tail error ballooned to ~40%
    of a real grid step's worth (0.14 absolute, vs the 0.01 bound).
    """

    def test_offset_tail_group_error_bounded(self):
        enc = GroupQuantEncoding(4, group_size=256)
        x = np.linspace(5, 6, 300, dtype=np.float32)
        d = enc.decode(enc.encode(x))
        tail = x[256:]
        span = tail.max() - tail.min()
        assert np.abs(d[256:] - tail).max() <= span / 15 * 0.51 + 1e-6

    def test_single_element_tail(self):
        # Extreme ragged tail: one real value + 31 padded slots.  Group
        # span is zero, so the value must round-trip (near-)exactly.
        enc = GroupQuantEncoding(4, group_size=32)
        x = np.full((33,), 7.5, np.float32)
        d = enc.decode(enc.encode(x))
        assert d[32] == pytest.approx(7.5, abs=1e-5)

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 400),
        offset=st.floats(-100, 100, width=32),
        bits=st.sampled_from([2, 4, 8]),
        group_size=st.sampled_from([7, 32, 256]),
    )
    def test_property_unaligned_error_within_real_span(
        self, n, offset, bits, group_size
    ):
        # Every group's error stays within half a grid step of the span
        # of its REAL values, for any (size, group_size) alignment — the
        # bound the padded zeros used to violate whenever the data sits
        # away from zero.
        rng = np.random.default_rng(n * 1000 + bits)
        x = (rng.normal(0, 1, n) + offset).astype(np.float32)
        enc = GroupQuantEncoding(bits, group_size=group_size)
        d = enc.decode(enc.encode(x))
        levels = (1 << bits) - 1
        scale = max(abs(float(x.max())), abs(float(x.min())), 1.0)
        for g in range(-(-n // group_size)):
            real = x[g * group_size:(g + 1) * group_size]
            span = float(real.max() - real.min())
            err = np.abs(d[g * group_size:(g + 1) * group_size] - real).max()
            assert err <= span / levels * 0.51 + 1e-6 + 1e-5 * scale

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 300),
        offset=st.floats(-50, 50, width=32),
    )
    def test_property_more_bits_never_worse(self, n, offset):
        # The 4-bit grid is a subset of the 8-bit grid over the same
        # group span (255 = 15 * 17), so 8-bit error is pointwise <=
        # 4-bit error — on aligned AND ragged sizes.
        rng = np.random.default_rng(n)
        x = (rng.normal(0, 2, n) + offset).astype(np.float32)
        err = {}
        for bits in (4, 8):
            enc = GroupQuantEncoding(bits, group_size=32)
            err[bits] = np.abs(enc.decode(enc.encode(x)) - x)
        assert np.all(err[8] <= err[4] + 1e-5)


class TestDescribeAndTrace:
    def test_describe_labels(self):
        assert GroupQuantPolicy(bits=4).describe() == "groupquant-int4"
        assert GroupQuantPolicy(bits=8).describe() == "groupquant-int8"

    def test_trace_policy_registered(self):
        from repro.diagnostics.golden import TRACE_POLICIES, build_trace_policy
        from repro.models import tiny_cnn

        g = tiny_cnn(batch_size=4, num_classes=4)
        assert "groupquant" in TRACE_POLICIES
        assert "groupquant-int8" in TRACE_POLICIES
        assert build_trace_policy(
            "groupquant", g).describe() == "groupquant-int4"
        assert build_trace_policy(
            "groupquant-int8", g).describe() == "groupquant-int8"

    def test_traced_run_smoke(self):
        from repro.diagnostics import run_traced

        digest = run_traced("tiny_cnn", "groupquant", steps=1)
        assert digest.steps

    def test_cli_trace_groupquant(self, capsys):
        from repro.cli import main

        assert main(["trace", "--policy", "groupquant", "--steps", "1"]) == 0
        assert "loss" in capsys.readouterr().out


class TestGroupQuantTraining:
    def test_int4_stash_trains(self):
        from repro.models import tiny_cnn
        from repro.train import SGD, Trainer, make_synthetic

        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(256, 4, 8, seed=1)
        policy = GroupQuantPolicy(bits=4, group_size=128)
        result = Trainer(g, policy, SGD(lr=0.05), seed=0).train(
            train, test, epochs=3
        )
        assert result.final_accuracy > 0.8

    def test_forward_untouched(self):
        from repro.models import tiny_cnn
        from repro.train import BaselinePolicy, GraphExecutor, make_synthetic

        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(16, 4, 8, seed=0)
        images, labels = train.images[:8], train.labels[:8]
        base = GraphExecutor(g, BaselinePolicy(), seed=0).forward(images, labels)
        gq = GraphExecutor(g, GroupQuantPolicy(4), seed=0).forward(images, labels)
        assert base == gq
