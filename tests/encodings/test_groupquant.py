"""Tests for the group-quantisation extension encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.encodings import GroupQuantEncoding, GroupQuantPolicy


class TestGroupQuant:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_error_bounded_by_half_step(self, bits, rng):
        enc = GroupQuantEncoding(bits, group_size=32)
        x = rng.normal(0, 2, (16, 32)).astype(np.float32)
        d = enc.decode(enc.encode(x))
        levels = (1 << bits) - 1
        for g in range(16):
            row = x[g]
            step = (row.max() - row.min()) / levels
            err = np.abs(d[g] - row).max()
            assert err <= step * 0.51 + 1e-6

    def test_constant_group_exact(self):
        enc = GroupQuantEncoding(2, group_size=8)
        x = np.full((4, 8), 3.25, np.float32)
        np.testing.assert_allclose(enc.decode(enc.encode(x)), x, atol=1e-6)

    def test_extremes_exact(self, rng):
        # Group min and max always land on grid points.
        enc = GroupQuantEncoding(4, group_size=16)
        x = rng.normal(0, 1, (16,)).astype(np.float32)
        d = enc.decode(enc.encode(x))
        assert d.min() == pytest.approx(x.min(), abs=1e-6)
        assert d.max() == pytest.approx(x.max(), abs=1e-6)

    def test_bytes_match_model(self, rng):
        for n in (1, 31, 256, 1000):
            enc = GroupQuantEncoding(4, group_size=64)
            x = rng.normal(0, 1, n).astype(np.float32)
            e = enc.encode(x)
            assert enc.measure_bytes(e) == enc.encoded_bytes(n)

    def test_int4_beats_fp8_bytes(self):
        enc4 = GroupQuantEncoding(4, group_size=256)
        from repro.encodings import dpr_encoding

        n = 1 << 16
        assert enc4.encoded_bytes(n) < dpr_encoding("fp8").encoded_bytes(n)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupQuantEncoding(3)
        with pytest.raises(ValueError):
            GroupQuantEncoding(4, group_size=0)

    @settings(max_examples=40)
    @given(
        x=hnp.arrays(np.float32,
                     st.integers(1, 300),
                     elements=st.floats(-1e4, 1e4, width=32)),
        bits=st.sampled_from([1, 2, 4, 8]),
    )
    def test_property_shape_and_idempotence(self, x, bits):
        enc = GroupQuantEncoding(bits, group_size=32)
        d = enc.decode(enc.encode(x))
        assert d.shape == x.shape
        d2 = enc.decode(enc.encode(d))
        np.testing.assert_allclose(d2, d, rtol=1e-5, atol=1e-5)


class TestGroupQuantTraining:
    def test_int4_stash_trains(self):
        from repro.models import tiny_cnn
        from repro.train import SGD, Trainer, make_synthetic

        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(256, 4, 8, seed=1)
        policy = GroupQuantPolicy(bits=4, group_size=128)
        result = Trainer(g, policy, SGD(lr=0.05), seed=0).train(
            train, test, epochs=3
        )
        assert result.final_accuracy > 0.8

    def test_forward_untouched(self):
        from repro.models import tiny_cnn
        from repro.train import BaselinePolicy, GraphExecutor, make_synthetic

        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(16, 4, 8, seed=0)
        images, labels = train.images[:8], train.labels[:8]
        base = GraphExecutor(g, BaselinePolicy(), seed=0).forward(images, labels)
        gq = GraphExecutor(g, GroupQuantPolicy(4), seed=0).forward(images, labels)
        assert base == gq
