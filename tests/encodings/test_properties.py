"""Hypothesis property-based tests for the encoding substrates.

These assert the invariants every experiment leans on: exact round-trips
for lossless codecs, bounded error and idempotence for lossy ones, and
byte-accounting consistency between the static size models and the runtime
representations.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dtypes import FP8, FP10, FP16
from repro.encodings.binarize import pack_bits, pack_nibbles, unpack_bits, unpack_nibbles
from repro.encodings.dpr import dpr_encoding, pack_codes, unpack_codes
from repro.encodings.floatsim import max_relative_error, quantize
from repro.encodings.ssdc import bitmap_decode, bitmap_encode, csr_bytes, csr_decode, csr_encode

DPR_DTYPES = [FP16, FP10, FP8]

_F32_BOUND = float(np.float32(1e30))
finite_f32 = st.floats(min_value=-_F32_BOUND, max_value=_F32_BOUND, width=32)

f32_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=40),
    elements=finite_f32,
)

bool_arrays = hnp.arrays(
    dtype=bool,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=300),
)


class TestBitPackingProperties:
    @given(mask=bool_arrays)
    def test_pack_unpack_identity(self, mask):
        np.testing.assert_array_equal(
            unpack_bits(pack_bits(mask), mask.shape), mask
        )

    @given(values=hnp.arrays(np.uint8, st.integers(1, 500),
                             elements=st.integers(0, 15)))
    def test_nibble_identity(self, values):
        np.testing.assert_array_equal(
            unpack_nibbles(pack_nibbles(values), values.shape), values
        )

    @given(mask=bool_arrays)
    def test_packed_words_are_exactly_ceil(self, mask):
        words = pack_bits(mask)
        assert words.size == -(-mask.size // 32)


class TestMinifloatProperties:
    @given(x=f32_arrays, dtype_idx=st.integers(0, 2))
    def test_idempotent(self, x, dtype_idx):
        dtype = DPR_DTYPES[dtype_idx]
        once = quantize(x, dtype)
        np.testing.assert_array_equal(quantize(once, dtype), once)

    @given(x=f32_arrays, dtype_idx=st.integers(0, 2))
    def test_error_bound_or_flush_or_clamp(self, x, dtype_idx):
        dtype = DPR_DTYPES[dtype_idx]
        q = quantize(x, dtype)
        mag = np.abs(x)
        in_range = (mag >= dtype.min_normal) & (mag <= dtype.max_finite)
        if in_range.any():
            rel = np.abs(q[in_range] - x[in_range]) / mag[in_range]
            assert rel.max() <= max_relative_error(dtype) * (1 + 1e-6)
        # Below range: flushed to zero; above range: clamped to max.
        below = mag < dtype.min_normal * (1 - max_relative_error(dtype))
        assert (q[below] == 0).all()
        above = mag > dtype.max_finite
        np.testing.assert_allclose(
            np.abs(q[above]), dtype.max_finite, rtol=1e-6
        )

    @given(x=f32_arrays, dtype_idx=st.integers(0, 2))
    def test_sign_never_flips(self, x, dtype_idx):
        dtype = DPR_DTYPES[dtype_idx]
        q = quantize(x, dtype)
        assert (q * x >= 0).all()  # zero or same sign

    @given(codes=hnp.arrays(np.uint32, st.integers(1, 200),
                            elements=st.integers(0, (1 << 10) - 1)),
           dtype_idx=st.integers(0, 2))
    def test_pack_codes_roundtrip(self, codes, dtype_idx):
        dtype = DPR_DTYPES[dtype_idx]
        codes = codes & np.uint32((1 << dtype.bits) - 1)
        words = pack_codes(codes, dtype)
        np.testing.assert_array_equal(
            unpack_codes(words, codes.size, dtype), codes
        )


class TestDPRProperties:
    @settings(max_examples=30)
    @given(x=f32_arrays, name=st.sampled_from(["fp16", "fp10", "fp8"]))
    def test_decode_equals_quantize(self, x, name):
        enc = dpr_encoding(name)
        np.testing.assert_array_equal(
            enc.decode(enc.encode(x)), quantize(x, enc.dtype)
        )

    @settings(max_examples=30)
    @given(x=f32_arrays, name=st.sampled_from(["fp16", "fp10", "fp8"]))
    def test_measured_bytes_match_model(self, x, name):
        enc = dpr_encoding(name)
        assert enc.measure_bytes(enc.encode(x)) == enc.encoded_bytes(x.size)


sparse_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=30),
    elements=st.one_of(st.just(0.0), finite_f32),
)


class TestSparseProperties:
    @settings(max_examples=60)
    @given(x=sparse_arrays)
    def test_csr_exact_roundtrip(self, x):
        np.testing.assert_array_equal(csr_decode(csr_encode(x)), x)

    @settings(max_examples=60)
    @given(x=sparse_arrays)
    def test_csr_bytes_model_matches(self, x):
        enc = csr_encode(x)
        assert enc.nbytes == csr_bytes(x.size, float((x == 0).mean()))

    @settings(max_examples=60)
    @given(x=sparse_arrays)
    def test_bitmap_exact_roundtrip(self, x):
        np.testing.assert_array_equal(bitmap_decode(bitmap_encode(x)), x)

    @settings(max_examples=60)
    @given(x=sparse_arrays, cols=st.sampled_from([16, 100, 256]))
    def test_csr_any_row_width(self, x, cols):
        np.testing.assert_array_equal(
            csr_decode(csr_encode(x, cols=cols)), x
        )
