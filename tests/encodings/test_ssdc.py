"""Tests for SSDC (CSR + narrow value optimisation) and the bitmap ablation."""

import numpy as np
import pytest

from repro.dtypes import FP8, FP16
from repro.encodings.floatsim import quantize
from repro.encodings.ssdc import (
    NARROW_COLS,
    SSDCEncoding,
    bitmap_bytes,
    bitmap_decode,
    bitmap_encode,
    csr_bytes,
    csr_decode,
    csr_encode,
)


def sparse_array(rng, shape, sparsity):
    x = rng.normal(0, 1, shape).astype(np.float32)
    x[rng.random(shape) < sparsity] = 0.0
    return x


class TestCSRRoundtrip:
    @pytest.mark.parametrize("sparsity", [0.0, 0.2, 0.5, 0.8, 0.99, 1.0])
    def test_exact(self, rng, sparsity):
        x = sparse_array(rng, (32, 300), sparsity)
        np.testing.assert_array_equal(csr_decode(csr_encode(x)), x)

    def test_4d_shape(self, rng):
        x = sparse_array(rng, (2, 8, 7, 7), 0.7)
        out = csr_decode(csr_encode(x))
        assert out.shape == x.shape
        np.testing.assert_array_equal(out, x)

    def test_small_array(self, rng):
        x = sparse_array(rng, (5,), 0.4)
        np.testing.assert_array_equal(csr_decode(csr_encode(x)), x)

    def test_all_zero(self):
        x = np.zeros((10, 10), np.float32)
        enc = csr_encode(x)
        assert enc.nnz == 0
        np.testing.assert_array_equal(csr_decode(enc), x)

    def test_narrow_indices_are_uint8(self, rng):
        enc = csr_encode(sparse_array(rng, (4, 1000), 0.5))
        assert enc.col_idx.dtype == np.uint8

    def test_wide_indices_are_int32(self, rng):
        enc = csr_encode(sparse_array(rng, (4, 1000), 0.5), cols=4000)
        assert enc.col_idx.dtype == np.int32

    def test_rejects_bad_cols(self):
        with pytest.raises(ValueError):
            csr_encode(np.zeros(4, np.float32), cols=0)


class TestNarrowValueOptimisation:
    """Paper: narrow indices move the breakeven sparsity from 50% to 20%."""

    def test_narrow_breakeven_near_20pct(self):
        n = 256 * 1024
        dense = 4 * n
        # At 25% sparsity narrow CSR must already compress...
        assert csr_bytes(n, 0.25, cols=NARROW_COLS) < dense
        # ...but wide (cuSPARSE-default, 4-byte) CSR must not.
        assert csr_bytes(n, 0.25, cols=100000) > dense

    def test_wide_breakeven_near_50pct(self):
        n = 1 << 20
        assert csr_bytes(n, 0.55, cols=100000) < 4 * n
        assert csr_bytes(n, 0.45, cols=100000) > 4 * n

    def test_size_model_matches_runtime(self, rng):
        for sparsity in (0.3, 0.6, 0.9):
            x = sparse_array(rng, (64, 512), sparsity)
            enc = csr_encode(x)
            actual = (x == 0).mean()
            assert enc.nbytes == csr_bytes(x.size, actual)

    def test_80pct_sparsity_compression(self):
        # VGG16 regime: >80% sparse maps compress well over 4x.
        n = 1 << 20
        assert 4 * n / csr_bytes(n, 0.85) > 4.5


class TestSSDCWithDPR:
    def test_zero_pattern_positions_preserved(self, rng):
        x = sparse_array(rng, (16, 256), 0.7)
        enc = csr_encode(x, value_dtype=FP8)
        out = csr_decode(enc)
        # Every stored position decodes to the FP8 quantisation of x.
        np.testing.assert_array_equal(out, quantize(x, FP8))

    def test_meta_arrays_untouched_by_dpr(self, rng):
        x = sparse_array(rng, (16, 256), 0.7)
        plain = csr_encode(x)
        lossy = csr_encode(x, value_dtype=FP16)
        np.testing.assert_array_equal(plain.col_idx, lossy.col_idx)
        np.testing.assert_array_equal(plain.row_ptr, lossy.row_ptr)

    def test_dpr_reduces_bytes(self, rng):
        x = sparse_array(rng, (16, 256), 0.5)
        assert csr_encode(x, value_dtype=FP8).nbytes < csr_encode(x).nbytes

    def test_encoding_class(self, rng):
        enc = SSDCEncoding()
        assert enc.lossless
        lossy = SSDCEncoding(value_dtype=FP8)
        assert not lossy.lossless
        assert "dpr-fp8" in lossy.name
        x = sparse_array(rng, (8, 300), 0.6)
        np.testing.assert_array_equal(enc.decode(enc.encode(x)), x)
        assert enc.measure_bytes(enc.encode(x)) == csr_bytes(
            x.size, (x == 0).mean()
        )

    def test_static_sparsity_validation(self):
        with pytest.raises(ValueError):
            csr_bytes(100, 1.5)


class TestBitmapAblation:
    def test_roundtrip(self, rng):
        x = sparse_array(rng, (40, 40), 0.6)
        np.testing.assert_array_equal(bitmap_decode(bitmap_encode(x)), x)

    def test_size_model(self, rng):
        x = sparse_array(rng, (128, 128), 0.75)
        enc = bitmap_encode(x)
        assert enc.nbytes == bitmap_bytes(x.size, (x == 0).mean())

    def test_bitmap_beats_csr_at_moderate_sparsity(self):
        # Bitmap meta is 1 bit/elem vs CSR's 1 byte/nnz: at moderate
        # sparsity bitmap's meta is cheaper...
        n = 1 << 20
        assert bitmap_bytes(n, 0.5) < csr_bytes(n, 0.5)
        # ...but CSR wins at extreme sparsity (bitmap still pays n bits).
        assert csr_bytes(n, 0.995) < bitmap_bytes(n, 0.995)
