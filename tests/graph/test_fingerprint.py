"""Canonical graph fingerprints: what must and must not change them.

The serve layer keys its content-addressed plan cache on
``graph_fingerprint``, so these invariances are load-bearing: two
spellings of the same network must share a cache slot, and any change
that affects planning must produce a different address.
"""

from repro.graph import GraphBuilder, graph_fingerprint, node_fingerprints
from repro.graph.fingerprint import fingerprint_pair
from repro.layers import Add, Conv2D, ReLU
from repro.models import build_model


def _diamond(name, order="ab", names=("a", "b", "add")):
    """conv/conv -> add diamond; branch construction order is a knob."""
    b = GraphBuilder(name, (2, 3, 8, 8))
    if order == "ab":
        left = b.add(Conv2D(4, 3, pad=1), b.input, name=names[0])
        right = b.add(Conv2D(4, 3, pad=1), b.input, name=names[1])
    else:
        right = b.add(Conv2D(4, 3, pad=1), b.input, name=names[1])
        left = b.add(Conv2D(4, 3, pad=1), b.input, name=names[0])
    merged = b.add(Add(), [left, right], name=names[2])
    b.add(ReLU(), merged, name="out")
    return b.build()


class TestGraphFingerprint:
    def test_deterministic_across_builds(self):
        g1 = build_model("tiny_cnn", batch_size=4)
        g2 = build_model("tiny_cnn", batch_size=4)
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_batch_size_changes_fingerprint(self):
        g4 = build_model("tiny_cnn", batch_size=4)
        g8 = build_model("tiny_cnn", batch_size=8)
        assert graph_fingerprint(g4) != graph_fingerprint(g8)

    def test_models_distinct(self):
        g = build_model("tiny_cnn", batch_size=4)
        h = build_model("scaled_vgg", batch_size=4)
        assert graph_fingerprint(g) != graph_fingerprint(h)

    def test_node_names_do_not_matter(self):
        g1 = _diamond("g1", names=("a", "b", "add"))
        g2 = _diamond("g2", names=("left", "right", "merge"))
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_construction_order_does_not_matter(self):
        # Same DAG, branches added in opposite order: the node ids are
        # permuted but the fingerprint must not move.
        g1 = _diamond("g", order="ab")
        g2 = _diamond("g", order="ba")
        assert graph_fingerprint(g1) == graph_fingerprint(g2)

    def test_layer_params_matter(self):
        b1 = GraphBuilder("g", (2, 3, 8, 8))
        b1.add(Conv2D(4, 3, pad=1), b1.input, name="c")
        b2 = GraphBuilder("g", (2, 3, 8, 8))
        b2.add(Conv2D(8, 3, pad=1), b2.input, name="c")
        assert graph_fingerprint(b1.build()) != graph_fingerprint(b2.build())

    def test_input_order_matters(self):
        # Add(a, b) and Add(b, a) are different programs for ordered-
        # input ops, so they must hash differently at the node level...
        b = GraphBuilder("g", (2, 3, 8, 8))
        a = b.add(Conv2D(4, 3, pad=1), b.input, name="a")
        c = b.add(Conv2D(4, 5, pad=2), b.input, name="c")
        b.add(Add(), [a, c], name="add")
        g1 = b.build()
        b = GraphBuilder("g", (2, 3, 8, 8))
        a = b.add(Conv2D(4, 3, pad=1), b.input, name="a")
        c = b.add(Conv2D(4, 5, pad=2), b.input, name="c")
        b.add(Add(), [c, a], name="add")
        g2 = b.build()
        assert graph_fingerprint(g1) != graph_fingerprint(g2)

    def test_node_fingerprints_cover_graph(self):
        g = build_model("tiny_cnn", batch_size=4)
        digests = node_fingerprints(g)
        assert set(digests) == {node.node_id for node in g.nodes}
        assert all(len(d) == 64 for d in digests.values())

    def test_fingerprint_pair(self):
        g = build_model("tiny_cnn", batch_size=4)
        digest, node_count = fingerprint_pair(g)
        assert digest == graph_fingerprint(g)
        assert node_count == len(g)
