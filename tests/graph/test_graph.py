"""Tests for the graph IR: builder, DAG invariants, introspection."""

import pytest

from repro.graph import Graph, GraphBuilder, GraphError
from repro.layers import Add, Concat, Conv2D, Dense, MaxPool2D, ReLU, SoftmaxCrossEntropy


def small_builder():
    return GraphBuilder("g", (2, 3, 8, 8))


class TestBuilder:
    def test_sequential_build(self, tiny_graph):
        assert len(tiny_graph) == 8  # input + 7 ops
        assert tiny_graph.node_by_name("conv1").kind == "conv"

    def test_shapes_propagate(self, tiny_graph):
        assert tiny_graph.node_by_name("pool1").output_shape == (4, 4, 4, 4)
        assert tiny_graph.node_by_name("fc").output_shape == (4, 4)

    def test_duplicate_names_rejected(self):
        b = small_builder()
        b.add(ReLU(), b.input, name="r")
        with pytest.raises(GraphError):
            b.add(ReLU(), b.input, name="r")

    def test_auto_names_unique(self):
        b = small_builder()
        r1 = b.add(ReLU(), b.input)
        r2 = b.add(ReLU(), r1)
        g = b.build()
        names = [n.name for n in g.nodes]
        assert len(names) == len(set(names))

    def test_multi_input_ops(self):
        b = small_builder()
        a = b.add(Conv2D(4, 3, pad=1), b.input, name="a")
        c = b.add(Conv2D(4, 3, pad=1), b.input, name="c")
        m = b.add(Add(), [a, c], name="add")
        g = b.build()
        assert [g.node(i).name for i in g.node_by_name("add").inputs] == ["a", "c"]

    def test_default_output_is_last(self):
        b = small_builder()
        b.add(ReLU(), b.input, name="r")
        g = b.build()
        assert g.node(g.output_id).name == "r"

    def test_shape_of(self):
        b = small_builder()
        r = b.add(Conv2D(5, 3, pad=1), b.input)
        assert b.shape_of(r) == (2, 5, 8, 8)

    def test_empty_inputs_rejected(self):
        b = small_builder()
        with pytest.raises(GraphError):
            b.add(ReLU(), [])


class TestGraphQueries:
    def test_topological_order_respects_edges(self, tiny_graph):
        order = tiny_graph.topological_ids()
        position = {nid: i for i, nid in enumerate(order)}
        for node in tiny_graph.nodes:
            for src in node.inputs:
                assert position[src] < position[node.node_id]

    def test_consumers(self, tiny_graph):
        conv1 = tiny_graph.node_by_name("conv1")
        consumers = tiny_graph.consumers(conv1.node_id)
        assert [c.name for c in consumers] == ["relu1"]

    def test_unknown_node(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.node(9999)
        with pytest.raises(GraphError):
            tiny_graph.node_by_name("nope")

    def test_param_shapes(self, tiny_graph):
        shapes = tiny_graph.param_shapes()
        assert shapes["conv1.w"] == (4, 3, 3, 3)
        assert shapes["fc.b"] == (4,)

    def test_num_parameters(self, tiny_graph):
        expected = (4 * 3 * 9 + 4) + (8 * 4 * 9 + 8) + (8 * 4 * 4 * 4 + 4)
        assert tiny_graph.num_parameters() == expected

    def test_flops_positive(self, tiny_graph):
        assert tiny_graph.total_forward_flops() > 0

    def test_summary_mentions_every_node(self, tiny_graph):
        text = tiny_graph.summary()
        for node in tiny_graph.nodes:
            assert node.name in text

    def test_cycle_detection(self):
        from repro.graph.node import OpNode

        layer = ReLU()
        nodes = {
            0: OpNode(0, "a", layer, [1], (1, 1, 2, 2)),
            1: OpNode(1, "b", layer, [0], (1, 1, 2, 2)),
        }
        with pytest.raises(GraphError):
            Graph("cyclic", nodes, 0, 1)

    def test_dangling_input_rejected(self):
        from repro.graph.node import OpNode

        nodes = {0: OpNode(0, "a", ReLU(), [5], (1, 1, 2, 2))}
        with pytest.raises(GraphError):
            Graph("dangling", nodes, 0, 0)
