"""Tests for the training schedule and liveness analysis."""

import pytest

from repro.dtypes import FP32
from repro.graph import (
    BACKWARD,
    FORWARD,
    ROLE_FEATURE_MAP,
    ROLE_GRADIENT_MAP,
    ROLE_STATE,
    ROLE_WEIGHT,
    ROLE_WEIGHT_GRAD,
    TrainingSchedule,
    compute_lifetimes,
)


class TestSchedule:
    def test_forward_then_backward(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        phases = [op.phase for op in s.ops]
        flip = phases.index(BACKWARD)
        assert all(p == FORWARD for p in phases[:flip])
        assert all(p == BACKWARD for p in phases[flip:])
        assert flip == s.forward_end

    def test_backward_is_reverse_forward(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        fwd = [op.node_id for op in s.ops if op.phase == FORWARD]
        bwd = [op.node_id for op in s.ops if op.phase == BACKWARD]
        assert bwd == list(reversed([n for n in fwd if n != tiny_graph.input_id]))

    def test_input_has_no_backward(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        assert not s.has_backward(tiny_graph.input_id)
        with pytest.raises(KeyError):
            s.backward_time(tiny_graph.input_id)

    def test_times_are_dense(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        assert [op.t for op in s.ops] == list(range(s.num_steps))
        assert s.num_steps == 2 * len(tiny_graph) - 1

    def test_is_forward_time(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        assert s.is_forward_time(0)
        assert not s.is_forward_time(s.end)


class TestLiveness:
    def test_every_tensor_well_formed(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        for t in compute_lifetimes(tiny_graph, s):
            assert 0 <= t.birth <= t.death <= s.end
            assert t.size_bytes >= 0

    def test_relu_output_stashed_until_its_backward(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        tensors = {t.spec.name: t for t in compute_lifetimes(tiny_graph, s)}
        relu2 = tiny_graph.node_by_name("relu2")
        fm = tensors["relu2.out"]
        # relu2 feeds fc (needs input) and its own backward needs output.
        fc = tiny_graph.node_by_name("fc")
        assert fm.death == max(
            s.backward_time(relu2.node_id), s.backward_time(fc.node_id)
        )

    def test_conv_output_consumed_by_relu_is_immediate(self, tiny_graph):
        # conv backward needs its *input*, relu backward needs its output,
        # so conv1.out dies at relu1's forward op.
        s = TrainingSchedule(tiny_graph)
        tensors = {t.spec.name: t for t in compute_lifetimes(tiny_graph, s)}
        relu1 = tiny_graph.node_by_name("relu1")
        assert tensors["conv1.out"].death == s.forward_time(relu1.node_id)

    def test_gradient_map_lifetime(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        tensors = {t.spec.name: t for t in compute_lifetimes(tiny_graph, s)}
        relu1 = tiny_graph.node_by_name("relu1")
        pool1 = tiny_graph.node_by_name("pool1")
        grad = tensors["relu1.grad"]
        assert grad.birth == s.backward_time(pool1.node_id)
        assert grad.death == s.backward_time(relu1.node_id)

    def test_weights_live_forever(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        for t in compute_lifetimes(tiny_graph, s, include_weights=True):
            if t.role == ROLE_WEIGHT:
                assert (t.birth, t.death) == (0, s.end)
                assert not t.shareable
            if t.role == ROLE_WEIGHT_GRAD:
                assert t.death == s.end

    def test_weights_excluded_by_default_flag(self, tiny_graph):
        tensors = compute_lifetimes(tiny_graph, include_weights=False)
        assert not any(t.role in (ROLE_WEIGHT, ROLE_WEIGHT_GRAD) for t in tensors)

    def test_saved_state_spans_forward_to_backward(self, tiny_graph):
        s = TrainingSchedule(tiny_graph)
        tensors = {t.spec.name: t for t in compute_lifetimes(tiny_graph, s)}
        probs = tensors["loss.probs"]
        loss = tiny_graph.node_by_name("loss")
        assert probs.role == ROLE_STATE
        assert probs.birth == s.forward_time(loss.node_id)
        assert probs.death == s.backward_time(loss.node_id)

    def test_feature_map_count(self, tiny_graph):
        tensors = compute_lifetimes(tiny_graph)
        fms = [t for t in tensors if t.role == ROLE_FEATURE_MAP]
        assert len(fms) == len(tiny_graph)  # one per node incl. input

    def test_gradient_count(self, tiny_graph):
        tensors = compute_lifetimes(tiny_graph)
        grads = [t for t in tensors if t.role == ROLE_GRADIENT_MAP]
        assert len(grads) == len(tiny_graph) - 1  # all but input

    def test_overlaps_predicate(self):
        from repro.graph.liveness import LiveTensor
        from repro.tensor import TensorSpec

        a = LiveTensor(TensorSpec("a", (1,)), 0, 5, 0, ROLE_FEATURE_MAP)
        b = LiveTensor(TensorSpec("b", (1,)), 5, 9, 0, ROLE_FEATURE_MAP)
        c = LiveTensor(TensorSpec("c", (1,)), 6, 9, 0, ROLE_FEATURE_MAP)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_death_before_birth_rejected(self):
        from repro.graph.liveness import LiveTensor
        from repro.tensor import TensorSpec

        with pytest.raises(ValueError):
            LiveTensor(TensorSpec("x", (1,), FP32), 5, 3, 0, ROLE_FEATURE_MAP)
