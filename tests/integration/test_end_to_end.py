"""Integration tests: the full pipeline on real (scaled) workloads."""

import numpy as np
import pytest

from repro.core import Gist, GistConfig
from repro.models import (
    PAPER_SUITE,
    build_model,
    resnet_cifar,
    scaled_alexnet,
    scaled_vgg,
    tiny_cnn,
)
from repro.perf import measure_overhead, simulate_swapping
from repro.train import (
    BaselinePolicy,
    GistPolicy,
    GraphExecutor,
    SGD,
    Trainer,
    make_synthetic,
)


class TestSuiteWideMFR:
    """The paper's headline numbers across the entire suite."""

    @pytest.fixture(scope="class")
    def reports(self):
        out = {}
        for name in PAPER_SUITE:
            graph = build_model(name, batch_size=64)
            out[name] = {
                "lossless": Gist(GistConfig.lossless()).measure_mfr(graph),
                "full": Gist(GistConfig.for_network(name)).measure_mfr(graph),
            }
        return out

    def test_every_network_compresses(self, reports):
        for name, r in reports.items():
            assert r["lossless"].mfr > 1.15, name
            assert r["full"].mfr > r["lossless"].mfr, name

    def test_average_mfr_bands(self, reports):
        lossless = np.mean([r["lossless"].mfr for r in reports.values()])
        full = np.mean([r["full"].mfr for r in reports.values()])
        assert 1.25 < lossless < 1.6   # paper: 1.4x
        assert 1.6 < full < 2.2        # paper: 1.8x

    def test_max_full_mfr_near_2x(self, reports):
        assert max(r["full"].mfr for r in reports.values()) > 1.85


class TestEndToEndTraining:
    def test_full_gist_policy_trains_all_models(self):
        train, test = make_synthetic(128, 4, 8, seed=2)
        for factory in (tiny_cnn,):
            graph = factory(batch_size=16, num_classes=4, image_size=8)
            policy = GistPolicy(graph, GistConfig(dpr_format="fp16"))
            result = Trainer(graph, policy, SGD(lr=0.05), seed=0).train(
                train, test, epochs=3
            )
            assert result.final_accuracy > 0.7, factory.__name__

    def test_scaled_models_one_step(self):
        for factory in (scaled_vgg, scaled_alexnet):
            graph = factory(batch_size=8)
            train, _ = make_synthetic(16, 10, 32, seed=0)
            ex = GraphExecutor(graph, seed=0)
            loss = ex.forward(train.images[:8], train.labels[:8])
            grads = ex.backward()
            assert np.isfinite(loss)
            assert all(np.isfinite(g).all() for g in grads.values())

    def test_resnet_cifar_trains_one_step(self):
        graph = resnet_cifar(14, batch_size=8, num_classes=4, image_size=8)
        train, _ = make_synthetic(16, 4, 8, seed=0)
        ex = GraphExecutor(graph, GistPolicy(graph, GistConfig(dpr_format="fp16")))
        loss = ex.forward(train.images[:8], train.labels[:8])
        grads = ex.backward()
        assert np.isfinite(loss)
        assert all(np.isfinite(g).all() for g in grads.values())

    def test_lossless_training_trajectory_identical(self):
        """Multi-step invariance: lossless Gist = baseline, bit for bit."""
        train, test = make_synthetic(64, 4, 8, seed=2)

        def run(policy_factory):
            graph = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
            trainer = Trainer(graph, policy_factory(graph),
                              SGD(lr=0.05, momentum=0.9), seed=0)
            return trainer.train(train, test, epochs=2)

        base = run(lambda g: BaselinePolicy())
        gist = run(lambda g: GistPolicy(g, GistConfig.lossless()))
        assert base.epoch_losses == gist.epoch_losses
        assert base.test_accuracy == gist.test_accuracy


class TestCrossModelConsistency:
    def test_static_runtime_binarize_agreement(self):
        """The schedule builder's encoded size matches what the runtime
        actually stores, for the same graph and encoding."""
        from repro.core import build_gist_plan

        graph = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        plan = build_gist_plan(graph, GistConfig.lossless())
        train, _ = make_synthetic(32, 4, 8, seed=0)
        ex = GraphExecutor(graph, GistPolicy(graph, GistConfig.lossless()))
        ex.forward(train.images[:16], train.labels[:16])
        runtime_bytes = ex.stash_bytes()
        for decision in plan.decisions.values():
            if decision.encoding == "binarize":
                assert runtime_bytes[decision.node_name] == decision.encoded_bytes

    def test_measured_sparsity_feeds_static_model(self):
        """Round trip: measure sparsity at runtime, hand it to the static
        accounting, sizes agree with the runtime CSR bytes."""
        from repro.analysis import MeasuredSparsity
        from repro.core import build_gist_plan

        graph = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, _ = make_synthetic(32, 4, 8, seed=0)
        ex = GraphExecutor(graph, GistPolicy(graph, GistConfig.lossless()))
        ex.forward(train.images[:16], train.labels[:16])
        model = MeasuredSparsity(ex.last_sparsity)
        plan = build_gist_plan(graph, GistConfig.lossless(), model)
        runtime_bytes = ex.stash_bytes()
        for decision in plan.decisions.values():
            if decision.encoding == "ssdc":
                assert (runtime_bytes[decision.node_name]
                        == decision.encoded_bytes), decision.node_name


class TestPerfIntegration:
    def test_gist_beats_swapping_everywhere(self):
        for name in ("alexnet", "vgg16"):
            graph = build_model(name, batch_size=64)
            swap = simulate_swapping(graph)
            gist = measure_overhead(graph, GistConfig.for_network(name))
            assert gist.overhead_frac < swap.naive_overhead
            assert gist.overhead_frac < max(swap.vdnn_overhead, 0.05)
