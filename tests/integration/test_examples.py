"""Smoke tests: the example scripts run to completion.

Only the fast (analysis-only) examples run here; the training examples
are exercised indirectly through the Figure 12/14 benches.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=None, monkeypatch=None):
    if monkeypatch is not None:
        monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "memory footprint ratio" in out
        assert "binarize" in out

    def test_memory_breakdown(self, capsys):
        run_example("memory_breakdown.py")
        out = capsys.readouterr().out
        assert "VGG16 alone stashes" in out
        assert "ReLU-Pool" in out

    def test_reproduce_paper_small_batch(self, capsys, monkeypatch, tmp_path):
        out_file = tmp_path / "headline.json"
        run_example(
            "reproduce_paper.py",
            ["--batch-size", "8", "--out", str(out_file)],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "averages" in out
        assert out_file.exists()
