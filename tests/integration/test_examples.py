"""Smoke tests: every example script runs to completion.

The training-heavy examples honour ``REPRO_FAST=1`` (fewer samples,
epochs and sweep points), so the whole directory can run here; the
analysis-only examples ignore the flag.  A parametrized sweep discovers
``examples/*.py`` dynamically — a new example is covered the day it
lands or this file fails to list it.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))

#: Examples taking CLI arguments needed to keep the smoke run small.
EXTRA_ARGV = {
    "reproduce_paper.py": ["--batch-size", "8"],
}


def run_example(name: str, argv=None, monkeypatch=None):
    if monkeypatch is not None:
        monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestAllExamplesFastMode:
    def test_every_example_is_listed(self):
        assert ALL_EXAMPLES, "examples directory went missing"

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_runs(self, name, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAST", "1")
        argv = list(EXTRA_ARGV.get(name, []))
        if name == "reproduce_paper.py":
            argv += ["--out", str(tmp_path / "out.json")]
        run_example(name, argv, monkeypatch)
        assert capsys.readouterr().out.strip()


class TestExampleOutput:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "memory footprint ratio" in out
        assert "binarize" in out

    def test_memory_breakdown(self, capsys):
        run_example("memory_breakdown.py")
        out = capsys.readouterr().out
        assert "VGG16 alone stashes" in out
        assert "ReLU-Pool" in out

    def test_reproduce_paper_small_batch(self, capsys, monkeypatch, tmp_path):
        out_file = tmp_path / "headline.json"
        run_example(
            "reproduce_paper.py",
            ["--batch-size", "8", "--out", str(out_file)],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "averages" in out
        assert out_file.exists()

    def test_train_with_dpr_fast(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        run_example("train_with_dpr.py")
        out = capsys.readouterr().out
        assert "uniform (forward-pass) FP8" in out
        assert "delayed (backward-only) FP8" in out

    def test_custom_encoding_fast(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        run_example("custom_encoding.py")
        out = capsys.readouterr().out
        assert "stash compression" in out
        assert "Top-K" in out

    def test_fit_larger_networks_fast(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        run_example("fit_larger_networks.py")
        out = capsys.readouterr().out
        assert "baseline batch" in out
        assert "deepest trainable" in out
