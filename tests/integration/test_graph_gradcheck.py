"""Whole-graph numerical gradient checks through the executor.

Verifies end-to-end backpropagation — including the stash plumbing, grad
accumulation at DAG fan-outs, and multi-input merges — by comparing the
executor's parameter gradients against central differences of the scalar
loss.  Run on a set of small graphs covering every structural pattern in
the model zoo (chains, residual adds, inception-style concats, BN, LRN,
dropout-free heads).
"""

import numpy as np
import pytest

from repro.graph import GraphBuilder
from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sigmoid,
    SoftmaxCrossEntropy,
)
from repro.train import GraphExecutor


def chain_graph():
    b = GraphBuilder("chain", (4, 2, 6, 6))
    x = b.add(Conv2D(3, 3, pad=1), b.input, name="conv1")
    x = b.add(ReLU(), x, name="relu1")
    x = b.add(MaxPool2D(2, 2), x, name="pool1")
    x = b.add(Dense(3), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def residual_graph():
    b = GraphBuilder("residual", (4, 3, 6, 6))
    trunk = b.add(Conv2D(3, 3, pad=1), b.input, name="conv1")
    y = b.add(BatchNorm2D(), trunk, name="bn1")
    y = b.add(ReLU(), y, name="relu1")
    y = b.add(Conv2D(3, 3, pad=1), y, name="conv2")
    s = b.add(Add(), [y, trunk], name="add")
    s = b.add(ReLU(), s, name="relu2")
    x = b.add(GlobalAvgPool2D(), s, name="gap")
    x = b.add(Flatten(), x, name="flat")
    x = b.add(Dense(3), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def inception_graph():
    b = GraphBuilder("inceptionette", (4, 3, 6, 6))
    b1 = b.add(Conv2D(2, 1), b.input, name="b1_conv")
    b1 = b.add(ReLU(), b1, name="b1_relu")
    b3 = b.add(Conv2D(2, 3, pad=1), b.input, name="b3_conv")
    b3 = b.add(ReLU(), b3, name="b3_relu")
    bp = b.add(MaxPool2D(3, 1, pad=1), b.input, name="bp_pool")
    cat = b.add(Concat(), [b1, b3, bp], name="concat")
    x = b.add(AvgPool2D(2, 2), cat, name="avg")
    x = b.add(Dense(3), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def lrn_graph():
    # No ReLU here: its kink makes central differences unreliable, and the
    # point of this graph is the LRN/sigmoid path.
    b = GraphBuilder("lrn_net", (4, 4, 5, 5))
    x = b.add(Conv2D(4, 3, pad=1), b.input, name="conv1")
    x = b.add(LocalResponseNorm(3, alpha=1e-2, k=1.0), x, name="norm1")
    x = b.add(Sigmoid(), x, name="sig")
    x = b.add(Dense(2), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


GRAPHS = {
    "chain": chain_graph,
    "residual": residual_graph,
    "inception": inception_graph,
    "lrn": lrn_graph,
}


@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_whole_graph_gradients(name, rng):
    graph = GRAPHS[name]()
    executor = GraphExecutor(graph, seed=1)
    input_shape = graph.node(graph.input_id).output_shape
    images = rng.normal(0, 1, input_shape).astype(np.float32)
    num_classes = graph.node(graph.node(graph.output_id).inputs[0]).output_shape[1]
    labels = rng.integers(0, num_classes, input_shape[0])

    executor.forward(images, labels)
    grads = executor.backward()
    params = executor.parameters()

    checked = 0
    eps = 1e-2
    for pname, grad in sorted(grads.items()):
        arr = params[pname]
        flat = arr.reshape(-1)
        gflat = grad.reshape(-1)
        # Probe a few coordinates per parameter.
        idxs = rng.choice(flat.size, size=min(4, flat.size), replace=False)
        for idx in idxs:
            orig = flat[idx]
            flat[idx] = orig + eps
            lp = executor.forward(images, labels)
            flat[idx] = orig - eps
            lm = executor.forward(images, labels)
            flat[idx] = orig
            numeric = (lp - lm) / (2 * eps)
            assert gflat[idx] == pytest.approx(numeric, rel=0.08, abs=2e-3), (
                f"{name}: {pname}[{idx}] analytic={gflat[idx]} "
                f"numeric={numeric}"
            )
            checked += 1
    assert checked >= 12  # every graph exercises a real spread of params
