"""Property-based tests over randomly generated training graphs.

A Hypothesis strategy builds random-but-valid CNN graphs (random layer
sequences, kernel sizes, widths, optional residual branches), and the
invariants that every Gist experiment relies on are asserted for each:

* schedule/liveness well-formedness;
* the Schedule Builder never *extends* a lifetime and never loses bytes;
* allocated footprints are ordered: dynamic <= static <= unshared, and
  Gist <= baseline at scale;
* the executor's lossless gradients are bit-identical to baseline.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import GistConfig, build_gist_plan
from repro.graph import GraphBuilder, TrainingSchedule
from repro.graph.liveness import ROLE_ENCODED, ROLE_FEATURE_MAP
from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.memory import (
    StaticAllocator,
    build_memory_plan,
    dynamic_footprint,
)
from repro.train import BaselinePolicy, GistPolicy, GraphExecutor

# ---------------------------------------------------------------------------
# Random graph strategy
# ---------------------------------------------------------------------------

_LAYER_CHOICES = ["conv", "relu", "pool", "avgpool", "bn", "dropout"]


@st.composite
def random_graphs(draw):
    """A random valid conv-net ending in Dense + SoftmaxCrossEntropy."""
    batch = draw(st.sampled_from([2, 4]))
    size = draw(st.sampled_from([8, 12]))
    builder = GraphBuilder("rand", (batch, 3, size, size))
    x = builder.input
    spatial = size
    channels = 3
    n_layers = draw(st.integers(2, 8))
    branch_point = None
    for i in range(n_layers):
        kind = draw(st.sampled_from(_LAYER_CHOICES))
        if kind == "conv":
            channels = draw(st.sampled_from([4, 6, 8]))
            x = builder.add(Conv2D(channels, 3, pad=1), x, name=f"conv{i}")
        elif kind == "relu":
            x = builder.add(ReLU(), x, name=f"relu{i}")
            if branch_point is None and draw(st.booleans()):
                branch_point = (x, channels, spatial)
        elif kind == "pool" and spatial >= 4:
            x = builder.add(MaxPool2D(2, 2), x, name=f"pool{i}")
            spatial //= 2
            branch_point = None
        elif kind == "avgpool" and spatial >= 4:
            x = builder.add(AvgPool2D(2, 2), x, name=f"avg{i}")
            spatial //= 2
            branch_point = None
        elif kind == "bn":
            x = builder.add(BatchNorm2D(), x, name=f"bn{i}")
        elif kind == "dropout":
            x = builder.add(Dropout(0.3, seed=i), x, name=f"drop{i}")
    # Optionally close a residual branch over the last same-shape segment.
    if branch_point is not None and draw(st.booleans()):
        source, bp_channels, bp_spatial = branch_point
        if bp_channels == channels and bp_spatial == spatial:
            if source.node_id != x.node_id:
                x = builder.add(Add(), [x, source], name="res_add")
    x = builder.add(Dense(3), x, name="fc")
    x = builder.add(SoftmaxCrossEntropy(), x, name="loss")
    builder.mark_output(x)
    return builder.build()


COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestScheduleProperties:
    @settings(**COMMON)
    @given(graph=random_graphs())
    def test_liveness_well_formed(self, graph):
        schedule = TrainingSchedule(graph)
        plan = build_memory_plan(graph, schedule)
        for t in plan.tensors:
            assert 0 <= t.birth <= t.death <= schedule.end
        # One feature map per node, one gradient per non-input node.
        fms = [t for t in plan.tensors if t.role == ROLE_FEATURE_MAP]
        assert len(fms) == len(graph)

    @settings(**COMMON)
    @given(graph=random_graphs())
    def test_footprint_ordering(self, graph):
        plan = build_memory_plan(graph)
        static = StaticAllocator().allocate(plan.tensors).total_bytes
        dynamic = dynamic_footprint(plan.tensors)
        unshared = sum(t.size_bytes for t in plan.tensors)
        assert dynamic <= static <= unshared


class TestScheduleBuilderProperties:
    @settings(**COMMON)
    @given(graph=random_graphs(),
           fmt=st.sampled_from(["fp16", "fp10", "fp8"]))
    def test_gist_never_extends_fp32_lifetimes(self, graph, fmt):
        schedule = TrainingSchedule(graph)
        baseline = {
            t.spec.name: t
            for t in build_memory_plan(graph, schedule).tensors
            if t.role == ROLE_FEATURE_MAP
        }
        gist = build_gist_plan(graph, GistConfig.full(fmt), schedule=schedule)
        for t in gist.plan.tensors:
            if t.role == ROLE_FEATURE_MAP and t.spec.name in baseline:
                assert t.death <= baseline[t.spec.name].death

    @settings(**COMMON)
    @given(graph=random_graphs())
    def test_encoded_tensors_bridge_the_gap(self, graph):
        gist = build_gist_plan(graph, GistConfig.full("fp8"))
        fm = {t.node_id: t for t in gist.plan.tensors
              if t.role == ROLE_FEATURE_MAP
              and not t.spec.name.endswith((".dec", ".recomp"))}
        for t in gist.plan.tensors:
            if t.role == ROLE_ENCODED and not t.spec.name.endswith(".argmax"):
                original = fm.get(t.node_id)
                if original is not None:
                    assert t.birth == original.death
                assert t.death >= gist.schedule.forward_end

    @settings(**COMMON)
    @given(graph=random_graphs())
    def test_every_decision_compresses(self, graph):
        gist = build_gist_plan(graph, GistConfig.full("fp8"))
        for decision in gist.decisions.values():
            assert decision.encoded_bytes < decision.fp32_bytes, (
                decision.node_name
            )


class TestExecutorProperties:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(graph=random_graphs(), data=st.data())
    def test_lossless_gist_bitwise_equal(self, graph, data):
        input_shape = graph.node(graph.input_id).output_shape
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        images = rng.normal(0, 1, input_shape).astype(np.float32)
        labels = rng.integers(0, 3, input_shape[0])

        def reset_dropout():
            for node in graph.nodes:
                if node.kind == "dropout":
                    node.layer.reset_rng()

        reset_dropout()
        base = GraphExecutor(graph, BaselinePolicy(), seed=0)
        base_loss = base.forward(images, labels)
        base_grads = base.backward()

        reset_dropout()
        gist = GraphExecutor(graph, GistPolicy(graph, GistConfig.lossless()),
                             seed=0)
        gist_loss = gist.forward(images, labels)
        gist_grads = gist.backward()

        assert base_loss == gist_loss
        for name in base_grads:
            np.testing.assert_array_equal(base_grads[name], gist_grads[name])
