"""Workspace-arena invariants and codec fast-path equivalence.

The arena's safety story is "rented buffers never alias while live" —
these tests pin that down at the pool level, through a full executor
step, and through the arena-aware codec paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.binarize import (
    pack_bits,
    pack_nibbles,
    unpack_bits,
    unpack_nibbles,
)
from repro.encodings.ssdc import csr_decode, csr_encode, csr_positions
from repro.kernels import WorkspaceArena
from repro.models import tiny_cnn
from repro.train import BaselinePolicy, GistPolicy, GraphExecutor


class TestArenaInvariants:
    def test_rent_never_aliases_outstanding(self):
        arena = WorkspaceArena()
        live = [arena.rent((4, 8), np.float32) for _ in range(6)]
        for i, a in enumerate(live):
            for b in live[i + 1:]:
                assert not np.shares_memory(a, b)

    def test_release_then_rent_reuses_buffer(self):
        arena = WorkspaceArena()
        a = arena.rent((3, 3), np.float32)
        arena.release(a)
        b = arena.rent((3, 3), np.float32)
        assert b is a
        assert arena.hits == 1

    def test_released_view_is_ignored(self):
        arena = WorkspaceArena()
        a = arena.rent((4, 4), np.float32)
        arena.release(a[:2])  # not the rented object: must be a no-op
        b = arena.rent((4, 4), np.float32)
        assert not np.shares_memory(a, b)
        assert arena.outstanding == 2

    def test_dtype_and_shape_key_pools_separately(self):
        arena = WorkspaceArena()
        a = arena.rent((8,), np.float32)
        arena.release(a)
        b = arena.rent((8,), np.float64)
        assert b is not a
        c = arena.rent((4, 2), np.float32)
        assert c is not a  # same byte count, different shape key

    def test_reset_reclaims_everything(self):
        arena = WorkspaceArena()
        rented = [arena.rent((5,), np.float32) for _ in range(3)]
        arena.reset()
        assert arena.outstanding == 0
        again = [arena.rent((5,), np.float32) for _ in range(3)]
        assert {id(a) for a in again} == {id(a) for a in rented}

    def test_disabled_arena_never_pools(self):
        arena = WorkspaceArena(enabled=False)
        a = arena.rent((4,), np.float32)
        arena.release(a)
        b = arena.rent((4,), np.float32)
        assert b is not a
        assert arena.outstanding == 0


class _AliasCheckingArena(WorkspaceArena):
    """Arena that asserts every rent is disjoint from all live buffers."""

    def rent(self, shape, dtype=np.float32):
        arr = super().rent(shape, dtype)
        for _, live in self._outstanding.values():
            if live is arr:
                continue
            assert not np.shares_memory(arr, live), (
                "arena handed out a buffer aliasing a live tensor"
            )
        return arr


@pytest.mark.parametrize("policy_cls", [BaselinePolicy, GistPolicy])
def test_arena_never_aliases_two_live_tensors_in_a_step(policy_cls):
    """Run real training steps with an arena that checks, on every rent,
    that the buffer overlaps no tensor still checked out this step."""
    graph = tiny_cnn(batch_size=4)
    policy = policy_cls(graph) if policy_cls is GistPolicy else policy_cls()
    arena = _AliasCheckingArena()
    ex = GraphExecutor(graph, policy=policy, seed=0, use_kernel_plans=True,
                       arena=arena)
    rng = np.random.default_rng(0)
    images = rng.normal(0, 1, (4, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 4, 4)
    for _ in range(3):
        ex.forward(images, labels)
        ex.backward()
    assert arena.hits > 0  # the pool actually recycled across steps


@pytest.mark.parametrize("policy_cls", [BaselinePolicy, GistPolicy])
def test_executor_ab_bit_identical(policy_cls):
    """Plans on vs off: same losses and parameter gradients, to the bit."""
    rng = np.random.default_rng(1)
    images = rng.normal(0, 1, (4, 3, 8, 8)).astype(np.float32)
    labels = rng.integers(0, 4, 4)
    results = []
    for use_plans in (True, False):
        graph = tiny_cnn(batch_size=4)
        policy = (policy_cls(graph) if policy_cls is GistPolicy
                  else policy_cls())
        ex = GraphExecutor(graph, policy=policy, seed=0,
                           use_kernel_plans=use_plans)
        steps = []
        for _ in range(2):
            loss = ex.forward(images, labels)
            grads = ex.backward()
            steps.append((loss, {k: v.copy() for k, v in grads.items()}))
        results.append(steps)
    on, off = results
    for (loss_on, grads_on), (loss_off, grads_off) in zip(on, off):
        assert loss_on == loss_off
        assert grads_on.keys() == grads_off.keys()
        for key in grads_on:
            assert np.array_equal(grads_on[key], grads_off[key]), key


class TestCodecFastPaths:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    def test_pack_bits_arena_matches_plain(self, n, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(n) > 0.5
        arena = WorkspaceArena()
        # Dirty the pool so the rented buffer arrives with stale bytes.
        junk = arena.rent((4 * ((n + 31) // 32),), np.uint8)
        junk.fill(0xFF)
        arena.release(junk)
        words = pack_bits(mask, arena=arena)
        assert np.array_equal(words, pack_bits(mask))
        assert np.array_equal(unpack_bits(words, mask.shape), mask)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 200), st.integers(0, 2**31 - 1))
    def test_pack_nibbles_arena_matches_plain(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 16, n).astype(np.uint8)
        arena = WorkspaceArena()
        npairs = (n + 1) // 2
        junk = arena.rent((4 * ((npairs + 3) // 4),), np.uint8)
        junk.fill(0xFF)
        arena.release(junk)
        words = pack_nibbles(values, arena=arena)
        assert np.array_equal(words, pack_nibbles(values))
        assert np.array_equal(unpack_nibbles(words, values.shape), values)

    def test_csr_positions_cached_on_encode(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 97).astype(np.float32)
        x[x < 0.5] = 0.0
        enc = csr_encode(x, cols=16)
        assert enc.positions is not None  # encode caches the flat indices
        pos = csr_positions(enc)
        assert pos is enc.positions
        np.testing.assert_array_equal(pos, np.flatnonzero(x))
        assert np.array_equal(csr_decode(enc), x)
