"""Fault-injection tests for the backend-agreement differential oracle.

The oracle's job is to catch a *wrong* backend, so every test here
registers a deliberately broken arm, asserts the oracle fires on exactly
that arm, and unregisters it again.  A passing clean registry is the
baseline case.
"""

import numpy as np

from repro.kernels.backends import (
    ConvBackend,
    FnBackend,
    PoolBackend,
    default_backend,
    register_backend,
    unregister_backend,
)
from repro.verify import (
    ORACLE_BACKEND_DIFFERENTIAL,
    verify_backends,
)


def _oracle_subjects(violations):
    return {v.subject for v in violations}


def test_clean_registry_has_no_violations():
    for seed in (0, 1, 7):
        assert verify_backends(seed) == []


def test_wrong_exact_arm_is_caught():
    base = default_backend("pack_bits")

    def evil(flat):
        out = np.array(base.fn(flat))
        if out.size:
            out[0] ^= np.uint8(1)  # flip one stored bit
        return out

    register_backend(FnBackend("pack_bits", "evil-exact", evil,
                               description="fault injection"))
    try:
        violations = verify_backends(11)
    finally:
        unregister_backend("pack_bits", "evil-exact")
    assert violations, "oracle missed a bit-flipping exact arm"
    assert _oracle_subjects(violations) == {"pack_bits:evil-exact"}
    assert all(v.oracle == ORACLE_BACKEND_DIFFERENTIAL for v in violations)
    # The injected arm must not poison later clean runs.
    assert verify_backends(11) == []


class _DriftingConv(ConvBackend):
    """Delegates to the default conv arm, then drifts y far past its
    declared tolerance."""

    name = "evil-tolerance"
    exact = False
    tolerance = 1e-7

    def forward(self, x, w4, bias, stride, pad, arena=None,
                want_saved=False):
        y, saved = default_backend("conv2d").forward(
            x, w4, bias, stride, pad, arena=arena, want_saved=want_saved
        )
        return y + np.float32(0.5), saved

    def backward(self, x, w4, dy, stride, pad, arena=None, saved=None):
        return default_backend("conv2d").backward(
            x, w4, dy, stride, pad, arena=arena, saved=saved
        )


def test_tolerance_violation_is_caught():
    register_backend(_DriftingConv())
    try:
        violations = verify_backends(5)
    finally:
        unregister_backend("conv2d", "evil-tolerance")
    assert violations
    assert _oracle_subjects(violations) == {"conv2d:evil-tolerance"}
    assert any("tolerance" in v.detail for v in violations)


class _ScrambledArgmaxPool(PoolBackend):
    """Huge float tolerance, but scrambled integer argmax output — the
    oracle must still demand exactness on non-float outputs."""

    name = "evil-argmax"
    exact = False
    tolerance = 1e9

    def forward(self, x, kh, kw, stride, pad, arena=None):
        y, argmax = default_backend("maxpool2d").forward(
            x, kh, kw, stride, pad, arena=arena
        )
        return y, (argmax + np.uint8(1)) % np.uint8(kh * kw)

    def backward(self, argmax, dy, x_shape, kh, kw, stride, pad,
                 arena=None):
        return default_backend("maxpool2d").backward(
            argmax, dy, x_shape, kh, kw, stride, pad, arena=arena
        )


def test_integer_outputs_must_be_exact_even_under_tolerance():
    register_backend(_ScrambledArgmaxPool())
    try:
        violations = verify_backends(2)
    finally:
        unregister_backend("maxpool2d", "evil-argmax")
    assert violations
    assert _oracle_subjects(violations) == {"maxpool2d:evil-argmax"}
    assert any("argmax" in v.detail for v in violations)


def test_crashing_arm_is_a_finding_not_an_abort():
    def crash(flat, cols):
        raise RuntimeError("injected crash")

    register_backend(FnBackend("csr_build", "evil-crash", crash,
                               description="fault injection"))
    try:
        violations = verify_backends(3)
    finally:
        unregister_backend("csr_build", "evil-crash")
    assert violations
    assert _oracle_subjects(violations) == {"csr_build:evil-crash"}
    assert all("crashed" in v.detail for v in violations)


def test_violations_carry_the_seed_for_replay():
    register_backend(FnBackend("pack_nibbles", "evil-seeded",
                               lambda flat: default_backend(
                                   "pack_nibbles").fn(flat) | np.uint8(1),
                               description="fault injection"))
    try:
        violations = verify_backends(42)
    finally:
        unregister_backend("pack_nibbles", "evil-seeded")
    assert violations
    assert all(v.seed == 42 for v in violations)


def test_oracle_is_seed_deterministic():
    register_backend(_DriftingConv())
    try:
        first = verify_backends(9)
        second = verify_backends(9)
    finally:
        unregister_backend("conv2d", "evil-tolerance")
    assert [str(v) for v in first] == [str(v) for v in second]
    assert first
