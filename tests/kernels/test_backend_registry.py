"""Regression tests for the kernel env switches and backend registry.

``REPRO_KERNEL_PLANS`` and ``REPRO_KERNEL_BACKEND`` share a contract:
values are validated, and an unknown value warns instead of silently
falling back (the satellite regression this file pins).  The registry
side covers the registration contract (exact XOR tolerance), forced-arm
resolution precedence, and the autotuner's persisted-selection
round-trip.
"""

import warnings

import numpy as np
import pytest

from repro.kernels import autotune
from repro.kernels import config
from repro.kernels.backends import (
    FnBackend,
    backends_for,
    default_backend,
    get_backend,
    register_backend,
    registered_ops,
    resolve_forced_backend,
    unregister_backend,
)
from repro.kernels.config import (
    _parse_backend_env,
    _parse_bool_env,
    backend_override,
    forced_backend,
)


# ----------------------------------------------------------------------
# REPRO_KERNEL_PLANS: validated boolean
# ----------------------------------------------------------------------
def test_plans_env_accepts_known_booleans(monkeypatch):
    for raw, expected in [("0", False), ("off", False), ("No", False),
                          ("1", True), ("true", True), ("YES", True)]:
        monkeypatch.setenv("REPRO_TEST_BOOL", raw)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert _parse_bool_env("REPRO_TEST_BOOL", True) is expected


def test_plans_env_unknown_value_warns_and_uses_default(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_BOOL", "banana")
    with pytest.warns(RuntimeWarning, match="not a recognised boolean"):
        assert _parse_bool_env("REPRO_TEST_BOOL", True) is True
    monkeypatch.setenv("REPRO_TEST_BOOL", "banana")
    with pytest.warns(RuntimeWarning):
        assert _parse_bool_env("REPRO_TEST_BOOL", False) is False


# ----------------------------------------------------------------------
# REPRO_KERNEL_BACKEND: spec parsing + forced resolution
# ----------------------------------------------------------------------
def test_backend_spec_parsing():
    assert _parse_backend_env(None) == {}
    assert _parse_backend_env("auto") == {}
    assert _parse_backend_env("blas-fat") == {"*": "blas-fat"}
    assert _parse_backend_env("conv2d=blas-fat,maxpool2d=reference") == {
        "conv2d": "blas-fat", "maxpool2d": "reference",
    }
    assert _parse_backend_env(" conv2d = threaded , auto ") == {
        "conv2d": "threaded",
    }


def test_backend_spec_malformed_entry_warns():
    with pytest.warns(RuntimeWarning, match="malformed"):
        assert _parse_backend_env("=blas-fat") == {}


def test_per_op_force_wins_over_bare_name():
    with backend_override("numpy-plan,conv2d=blas-fat"):
        assert forced_backend("conv2d") == "blas-fat"
        assert forced_backend("maxpool2d") == "numpy-plan"
        assert resolve_forced_backend("conv2d").name == "blas-fat"
        assert resolve_forced_backend("maxpool2d").name == "numpy-plan"


def test_bare_name_applies_only_where_registered():
    # blas-fat exists for conv2d only: pools silently keep the chooser.
    with backend_override("blas-fat"):
        assert resolve_forced_backend("conv2d").name == "blas-fat"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_forced_backend("maxpool2d") is None


def test_unknown_backend_name_warns_instead_of_silent_fallback():
    with backend_override("definitely-not-a-backend"):
        with pytest.warns(RuntimeWarning, match="unknown backend"):
            assert resolve_forced_backend("conv2d") is None


# ----------------------------------------------------------------------
# Registry contract
# ----------------------------------------------------------------------
def test_every_op_registers_reference_and_default():
    assert registered_ops() == [
        "conv2d", "csr_build", "maxpool2d", "pack_bits", "pack_nibbles",
    ]
    for op in registered_ops():
        arms = backends_for(op)
        assert len(arms) >= 2, f"{op} needs at least two arms"
        assert default_backend(op) is not None
        # The first-listed arm is the family's ground-truth arm.
        assert arms[0].name in ("reference", "loop")


def test_nonexact_arm_without_tolerance_is_rejected():
    with pytest.raises(ValueError, match="error bound"):
        register_backend(FnBackend("pack_bits", "bad-contract",
                                   lambda flat: flat, exact=False,
                                   tolerance=0.0))
    with pytest.raises(KeyError):
        get_backend("pack_bits", "bad-contract")


def test_unregister_is_idempotent():
    unregister_backend("pack_bits", "never-registered")  # no raise
    with pytest.raises(KeyError, match="known:"):
        get_backend("pack_bits", "never-registered")


# ----------------------------------------------------------------------
# Autotune persistence round-trip
# ----------------------------------------------------------------------
def test_autotune_selection_persists_across_cache_clears(tmp_path,
                                                         monkeypatch):
    cache = tmp_path / "autotune.json"
    monkeypatch.setattr(config, "autotune_cache_path", str(cache))
    autotune.clear_selection_cache()
    try:
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (2, 3, 8, 8)).astype(np.float32)
        w4 = rng.normal(0, 0.5, (4, 3, 3, 3)).astype(np.float32)
        first = autotune.autotuned_backend("conv2d", x, w4, None, 1, 1)
        report = autotune.autotune_report()
        assert len(report) == 1 and report[0]["source"] == "tuned"
        assert cache.exists(), "selection was not persisted"

        # A fresh in-memory cache must reload — and re-verify — the
        # persisted selection instead of re-timing every arm.
        autotune.clear_selection_cache()
        second = autotune.autotuned_backend("conv2d", x, w4, None, 1, 1)
        report = autotune.autotune_report()
        assert second.name == first.name
        assert report[0]["source"] == "persisted"
    finally:
        autotune.clear_selection_cache()


def test_autotune_survives_corrupt_cache_file(tmp_path, monkeypatch):
    cache = tmp_path / "autotune.json"
    cache.write_text("{not json")
    monkeypatch.setattr(config, "autotune_cache_path", str(cache))
    autotune.clear_selection_cache()
    try:
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, (1, 2, 6, 6)).astype(np.float32)
        w4 = rng.normal(0, 0.5, (3, 2, 3, 3)).astype(np.float32)
        chosen = autotune.autotuned_backend("conv2d", x, w4, None, 1, 0)
        assert chosen.name in {b.name for b in backends_for("conv2d")}
        assert autotune.autotune_report()[0]["source"] == "tuned"
    finally:
        autotune.clear_selection_cache()


def test_autotune_cache_from_different_host_warns_and_retunes(tmp_path,
                                                              monkeypatch):
    cache = tmp_path / "autotune.json"
    monkeypatch.setattr(config, "autotune_cache_path", str(cache))
    autotune.clear_selection_cache()
    try:
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, (1, 2, 6, 6)).astype(np.float32)
        w4 = rng.normal(0, 0.5, (3, 2, 3, 3)).astype(np.float32)
        autotune.autotuned_backend("conv2d", x, w4, None, 1, 0)
        assert cache.exists()

        # Forge a cache tuned on a machine with a different core count:
        # its timings are meaningless here, so loading must warn and
        # fall back to re-timing every arm on *this* host.
        import json
        data = json.loads(cache.read_text())
        assert data["host"] == autotune._host_signature()
        data["host"] = {"usable_cores": data["host"]["usable_cores"] + 7}
        cache.write_text(json.dumps(data))

        autotune.clear_selection_cache()
        with pytest.warns(RuntimeWarning, match="host signature"):
            autotune.autotuned_backend("conv2d", x, w4, None, 1, 0)
        assert autotune.autotune_report()[0]["source"] == "tuned"
    finally:
        autotune.clear_selection_cache()


def test_autotune_unstamped_legacy_cache_is_ignored(tmp_path, monkeypatch):
    import json
    cache = tmp_path / "autotune.json"
    # Pre-host-stamp cache layout: selections at top level, no "host".
    cache.write_text(json.dumps({
        "version": 1,
        "selections": {"conv2d|bogus": {"backend": "reference",
                                        "timings_ms": {}}},
    }))
    monkeypatch.setattr(config, "autotune_cache_path", str(cache))
    autotune.clear_selection_cache()
    try:
        with pytest.warns(RuntimeWarning, match="host signature"):
            assert autotune._load_persisted() == {}
    finally:
        autotune.clear_selection_cache()
