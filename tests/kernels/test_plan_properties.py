"""Property tests for the shape-static kernel plans.

The planned kernels promise *bit identity* with the reference Python-loop
kernels, not approximate equality: the whole A/B story of the runtime
kernel layer rests on "same floats, less time".  These tests sweep random
shape signatures (Hypothesis) and assert exact ``np.array_equal`` on every
output, plus the exact adjoint relationship between im2col and col2im.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.plan import (
    KernelPlan,
    clear_plan_cache,
    gemm_dcols,
    gemm_forward,
    get_plan,
    plan_cache_stats,
)
from repro.layers.im2col import (
    col2im_reference,
    conv_output_hw,
    im2col_reference,
)


@st.composite
def conv_signatures(draw):
    """Random valid (shape, kh, kw, stride, pad) signatures."""
    n = draw(st.integers(1, 3))
    c = draw(st.integers(1, 4))
    kh = draw(st.integers(1, 4))
    kw = draw(st.integers(1, 4))
    stride = draw(st.integers(1, 3))
    pad = draw(st.integers(0, 2))
    # Input large enough for at least one window position.
    h = draw(st.integers(max(1, kh - 2 * pad), 10))
    w = draw(st.integers(max(1, kw - 2 * pad), 10))
    conv_output_hw(h, w, kh, kw, stride, pad)  # raises if invalid
    return (n, c, h, w), kh, kw, stride, pad


@settings(max_examples=60, deadline=None)
@given(conv_signatures(), st.integers(0, 2**31 - 1))
def test_im2col_bit_identical(sig, seed):
    shape, kh, kw, stride, pad = sig
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, shape).astype(np.float32)
    plan = KernelPlan(shape, kh, kw, stride, pad)
    got = plan.im2col(x)
    want = im2col_reference(x, kh, kw, stride, pad)
    assert got.dtype == want.dtype
    assert np.array_equal(got, want)


@settings(max_examples=60, deadline=None)
@given(conv_signatures(), st.integers(0, 2**31 - 1))
def test_col2im_bit_identical(sig, seed):
    shape, kh, kw, stride, pad = sig
    n, c, h, w = shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    rng = np.random.default_rng(seed)
    cols = rng.normal(0, 1, (n, c * kh * kw, oh * ow)).astype(np.float32)
    plan = KernelPlan(shape, kh, kw, stride, pad)
    got = plan.col2im(cols)
    want = col2im_reference(cols, shape, kh, kw, stride, pad)
    # Bitwise: the slot reduction replays the reference accumulation order.
    assert np.array_equal(got, want)


@settings(max_examples=40, deadline=None)
@given(conv_signatures(), st.integers(0, 2**31 - 1))
def test_col2im_is_exact_adjoint_of_im2col(sig, seed):
    """<im2col(x), g> == <x, col2im(g)> with *exact* arithmetic.

    Integer-valued operands keep every product and partial sum exactly
    representable, so the adjoint identity holds to the last bit — any
    index off by one anywhere would break it.
    """
    shape, kh, kw, stride, pad = sig
    n, c, h, w = shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    rng = np.random.default_rng(seed)
    x = rng.integers(-8, 9, shape).astype(np.float32)
    g = rng.integers(-8, 9, (n, c * kh * kw, oh * ow)).astype(np.float32)
    plan = KernelPlan(shape, kh, kw, stride, pad)
    lhs = np.vdot(plan.im2col(x).astype(np.float64), g.astype(np.float64))
    rhs = np.vdot(x.astype(np.float64),
                  plan.col2im(g).astype(np.float64))
    assert lhs == rhs


def _maxpool_reference(x, kh, kw, stride, pad):
    """The seed max-pool forward: pad with -inf, unfold, argmax per window."""
    n, c, h, w = x.shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)),
                   mode="constant", constant_values=-np.inf)
    cols = im2col_reference(x, kh, kw, stride, 0)
    cols = cols.reshape(n, c, kh * kw, oh * ow)
    argmax = cols.argmax(axis=2).astype(np.uint8)
    y = np.take_along_axis(cols, argmax[:, :, None, :].astype(np.intp),
                           axis=2)[:, :, 0, :]
    return y.reshape(n, c, oh, ow).astype(np.float32), argmax.reshape(
        n, c, oh, ow)


def _maxpool_backward_reference(argmax, dy, shape, kh, kw, stride, pad):
    """The seed scatter: decompose winners into offsets, multi-index add.at."""
    n, c, h, w = shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    dx = np.zeros((n, c, hp, wp), dtype=dy.dtype)
    oy, ox = np.meshgrid(np.arange(oh), np.arange(ow), indexing="ij")
    base_i = (oy * stride).ravel()
    base_j = (ox * stride).ravel()
    amax = argmax.reshape(n, c, oh * ow)
    di = amax // kw
    dj = amax % kw
    rows = base_i[None, None, :] + di
    colsj = base_j[None, None, :] + dj
    nn = np.arange(n)[:, None, None]
    cc = np.arange(c)[None, :, None]
    np.add.at(dx, (nn, cc, rows, colsj), dy.reshape(n, c, oh * ow))
    if pad > 0:
        dx = dx[:, :, pad:pad + h, pad:pad + w]
    return dx


@settings(max_examples=60, deadline=None)
@given(conv_signatures(), st.integers(0, 2**31 - 1))
def test_maxpool_forward_bit_identical(sig, seed):
    shape, kh, kw, stride, pad = sig
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, shape).astype(np.float32)
    plan = KernelPlan(shape, kh, kw, stride, pad)
    y, argmax = plan.maxpool_forward(x)
    y_ref, argmax_ref = _maxpool_reference(x, kh, kw, stride, pad)
    assert np.array_equal(y, y_ref)
    # Same winner under ties, too — the map feeds the backward scatter.
    assert np.array_equal(argmax, argmax_ref)


@settings(max_examples=60, deadline=None)
@given(conv_signatures(), st.integers(0, 2**31 - 1))
def test_maxpool_backward_bit_identical(sig, seed):
    """Covers overlapping windows (stride < kernel): duplicate scatter
    targets must accumulate in the reference element order."""
    shape, kh, kw, stride, pad = sig
    n, c, h, w = shape
    oh, ow = conv_output_hw(h, w, kh, kw, stride, pad)
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, shape).astype(np.float32)
    dy = rng.normal(0, 1, (n, c, oh, ow)).astype(np.float32)
    plan = KernelPlan(shape, kh, kw, stride, pad)
    _, argmax = plan.maxpool_forward(x)
    got = plan.maxpool_backward(argmax, dy)
    want = _maxpool_backward_reference(argmax, dy, shape, kh, kw, stride, pad)
    assert np.array_equal(got, want)


def test_maxpool_disjoint_fast_path_matches_general():
    """stride == kernel, pad == 0, exact tiling takes the reshape path;
    force the general path through a same-geometry plan and compare."""
    rng = np.random.default_rng(3)
    x = rng.normal(0, 1, (2, 3, 8, 8)).astype(np.float32)
    plan = KernelPlan(x.shape, 2, 2, 2, 0)
    y, argmax = plan.maxpool_forward(x)
    y_ref, argmax_ref = _maxpool_reference(x, 2, 2, 2, 0)
    assert np.array_equal(y, y_ref)
    assert np.array_equal(argmax, argmax_ref)


@settings(max_examples=30, deadline=None)
@given(conv_signatures(), st.integers(0, 2**31 - 1))
def test_noncontiguous_input_bit_identical(sig, seed):
    """einsum outputs can be transposed views; the strided gather must
    compact them instead of misreading their memory."""
    shape, kh, kw, stride, pad = sig
    n, c, h, w = shape
    rng = np.random.default_rng(seed)
    # (C, N, H, W) storage transposed into an (N, C, H, W) view.
    x = np.ascontiguousarray(
        rng.normal(0, 1, (c, n, h, w)).astype(np.float32)
    ).transpose(1, 0, 2, 3)
    assert not x.flags.c_contiguous or 1 in (n, c)
    plan = KernelPlan(shape, kh, kw, stride, pad)
    assert np.array_equal(
        plan.im2col(x), im2col_reference(x, kh, kw, stride, pad)
    )
    y, argmax = plan.maxpool_forward(x)
    y_ref, argmax_ref = _maxpool_reference(x, kh, kw, stride, pad)
    assert np.array_equal(y, y_ref)
    assert np.array_equal(argmax, argmax_ref)


def test_padded_workspace_reused_across_calls():
    """The persistent pad workspace must not leak state between inputs."""
    plan = KernelPlan((1, 2, 5, 5), 3, 3, 1, 1)
    rng = np.random.default_rng(0)
    for _ in range(3):
        x = rng.normal(0, 1, (1, 2, 5, 5)).astype(np.float32)
        assert np.array_equal(
            plan.im2col(x), im2col_reference(x, 3, 3, 1, 1)
        )


def test_slot_workspace_reused_across_calls():
    """col2im's zero-once workspace: stale slot data must never bleed in."""
    plan = KernelPlan((1, 2, 6, 6), 3, 3, 2, 1)
    oh, ow = plan.oh, plan.ow
    rng = np.random.default_rng(1)
    for _ in range(3):
        cols = rng.normal(0, 1, (1, 2 * 9, oh * ow)).astype(np.float32)
        assert np.array_equal(
            plan.col2im(cols),
            col2im_reference(cols, (1, 2, 6, 6), 3, 3, 2, 1),
        )


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 64), st.integers(1, 128), st.integers(1, 4),
       st.integers(1, 64), st.integers(0, 2**31 - 1))
def test_autotuned_gemms_match_reference_einsum(f, k, n, p, seed):
    """Every call — probe and fast path alike — must equal the reference
    contraction bitwise, even on signatures where raw matmul diverges."""
    rng = np.random.default_rng(seed)
    wmat = rng.normal(0, 1, (f, k)).astype(np.float32)
    cols = rng.normal(0, 1, (n, k, p)).astype(np.float32)
    dy = rng.normal(0, 1, (n, f, p)).astype(np.float32)
    want_fwd = np.einsum("fk,nkp->nfp", wmat, cols, optimize=True)
    want_dcols = np.einsum("fk,nfp->nkp", wmat, dy, optimize=True)
    for _ in range(2):  # first call probes, second takes the chosen path
        got = gemm_forward(wmat, cols)
        assert np.array_equal(got, want_fwd)
        # Memory layout must match too: downstream reductions sum in
        # memory order, so a layout change would alter *their* bits.
        assert got.strides == want_fwd.strides
        assert np.array_equal(gemm_dcols(wmat, dy), want_dcols)
    out = np.empty((n, k, p), np.float32)
    assert np.array_equal(gemm_dcols(wmat, dy, out=out), want_dcols)


class TestPlanCache:
    def test_same_signature_shares_plan(self):
        clear_plan_cache()
        a = get_plan((2, 3, 8, 8), 3, 3, 1, 1)
        b = get_plan((2, 3, 8, 8), 3, 3, 1, 1)
        assert a is b
        stats = plan_cache_stats()
        assert stats["size"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1

    def test_distinct_signatures_get_distinct_plans(self):
        clear_plan_cache()
        a = get_plan((2, 3, 8, 8), 3, 3, 1, 1)
        b = get_plan((2, 3, 8, 8), 3, 3, 2, 1)
        assert a is not b
        assert plan_cache_stats()["size"] == 2

    def test_clear_resets_counters(self):
        get_plan((1, 1, 4, 4), 2, 2, 2, 0)
        clear_plan_cache()
        stats = plan_cache_stats()
        assert stats == {"size": 0, "hits": 0, "misses": 0}
