"""Numerical gradient checks for every layer's backward pass.

These verify the cuDNN-substitute kernels: if any backward formula were
wrong, every downstream experiment (accuracy studies especially) would be
measuring artifacts of our substrate instead of Gist's behaviour.
"""

import numpy as np
import pytest

from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    Sigmoid,
    SoftmaxCrossEntropy,
    Tanh,
)

from tests.conftest import check_layer_gradients, numerical_gradient, run_layer


def _x(rng, *shape):
    return rng.normal(0, 1, shape).astype(np.float32)


class TestConvGradients:
    def test_basic(self, rng):
        layer = Conv2D(3, 3, stride=1, pad=1)
        x = _x(rng, 2, 2, 5, 5)
        params = layer.init_params([x.shape], rng)
        check_layer_gradients(layer, [x], params)

    def test_strided(self, rng):
        layer = Conv2D(2, 3, stride=2, pad=0)
        x = _x(rng, 2, 3, 7, 7)
        params = layer.init_params([x.shape], rng)
        check_layer_gradients(layer, [x], params)

    def test_no_bias(self, rng):
        layer = Conv2D(2, 3, pad=1, bias=False)
        x = _x(rng, 1, 2, 4, 4)
        params = layer.init_params([x.shape], rng)
        assert "b" not in params
        check_layer_gradients(layer, [x], params)

    def test_1x1(self, rng):
        layer = Conv2D(4, 1)
        x = _x(rng, 2, 3, 4, 4)
        params = layer.init_params([x.shape], rng)
        check_layer_gradients(layer, [x], params)

    def test_rectangular_kernel(self, rng):
        layer = Conv2D(2, (1, 3), pad=0)
        x = _x(rng, 1, 2, 4, 6)
        params = layer.init_params([x.shape], rng)
        check_layer_gradients(layer, [x], params)


class TestActivationGradients:
    def test_relu(self, rng):
        # Shift away from 0 to avoid the kink in finite differences.
        x = _x(rng, 3, 4, 5, 5)
        x[np.abs(x) < 0.05] += 0.2
        check_layer_gradients(ReLU(), [x])

    def test_sigmoid(self, rng):
        check_layer_gradients(Sigmoid(), [_x(rng, 4, 7)])

    def test_tanh(self, rng):
        check_layer_gradients(Tanh(), [_x(rng, 4, 7)])


class TestPoolGradients:
    def test_maxpool(self, rng):
        x = _x(rng, 2, 2, 6, 6)
        check_layer_gradients(MaxPool2D(2, 2), [x])

    def test_maxpool_3x3_stride2(self, rng):
        x = _x(rng, 2, 2, 7, 7)
        check_layer_gradients(MaxPool2D(3, 2), [x])

    def test_maxpool_padded(self, rng):
        x = _x(rng, 1, 2, 6, 6)
        check_layer_gradients(MaxPool2D(3, 2, pad=1), [x])

    def test_avgpool(self, rng):
        check_layer_gradients(AvgPool2D(2, 2), [_x(rng, 2, 3, 6, 6)])

    def test_avgpool_padded(self, rng):
        check_layer_gradients(AvgPool2D(3, 2, pad=1), [_x(rng, 1, 2, 5, 5)])

    def test_global_avgpool(self, rng):
        check_layer_gradients(GlobalAvgPool2D(), [_x(rng, 2, 3, 4, 4)])


class TestNormGradients:
    def test_batchnorm(self, rng):
        layer = BatchNorm2D()
        x = _x(rng, 4, 3, 4, 4)
        params = layer.init_params([x.shape], rng)
        params["gamma"] = rng.uniform(0.5, 1.5, 3).astype(np.float32)
        params["beta"] = rng.normal(0, 0.3, 3).astype(np.float32)
        check_layer_gradients(layer, [x], params, rtol=2e-2, atol=3e-3)

    def test_lrn(self, rng):
        layer = LocalResponseNorm(size=3, alpha=1e-2, beta=0.75, k=1.0)
        x = _x(rng, 2, 6, 3, 3)
        check_layer_gradients(layer, [x], rtol=2e-2, atol=1e-4)

    def test_lrn_default_params(self, rng):
        layer = LocalResponseNorm()
        x = _x(rng, 1, 8, 2, 2)
        check_layer_gradients(layer, [x], rtol=2e-2, atol=1e-4)


class TestOtherGradients:
    def test_dense(self, rng):
        layer = Dense(5)
        x = _x(rng, 3, 2, 2, 2)
        params = layer.init_params([x.shape], rng)
        check_layer_gradients(layer, [x], params)

    def test_dropout_scaling(self, rng):
        # Dropout gradient equals its mask; verify dX = dY * mask.
        layer = Dropout(0.5, seed=3)
        x = _x(rng, 4, 10)
        y, ctx = run_layer(layer, [x])
        dy = _x(rng, 4, 10)
        (dx,), _ = layer.backward(dy, {}, ctx)
        mask = ctx.state["mask"]
        np.testing.assert_allclose(dx, dy * mask)

    def test_flatten(self, rng):
        check_layer_gradients(Flatten(), [_x(rng, 2, 3, 2, 2)])

    def test_add(self, rng):
        layer = Add()
        a, b = _x(rng, 2, 3, 2, 2), _x(rng, 2, 3, 2, 2)
        y, ctx = run_layer(layer, [a, b])
        dy = _x(rng, 2, 3, 2, 2)
        dxs, _ = layer.backward(dy, {}, ctx)
        assert len(dxs) == 2
        np.testing.assert_allclose(dxs[0], dy)
        np.testing.assert_allclose(dxs[1], dy)

    def test_concat(self, rng):
        layer = Concat()
        a, b = _x(rng, 2, 3, 4, 4), _x(rng, 2, 5, 4, 4)
        y, ctx = run_layer(layer, [a, b])
        dy = _x(rng, 2, 8, 4, 4)
        dxs, _ = layer.backward(dy, {}, ctx)
        np.testing.assert_allclose(dxs[0], dy[:, :3])
        np.testing.assert_allclose(dxs[1], dy[:, 3:])

    def test_softmax_ce(self, rng):
        layer = SoftmaxCrossEntropy()
        logits = _x(rng, 6, 4)
        labels = rng.integers(0, 4, 6)
        layer.set_labels(labels)
        y, ctx = run_layer(layer, [logits])
        (dx,), _ = layer.backward(np.ones(1, np.float32), {}, ctx)

        def objective():
            layer.set_labels(labels)
            y2, _ = run_layer(layer, [logits])
            return float(y2[0])

        num = numerical_gradient(objective, logits, eps=1e-2)
        np.testing.assert_allclose(dx, num, rtol=2e-2, atol=1e-4)
