"""Behavioural and metadata tests for the layer library."""

import numpy as np
import pytest

from repro.dtypes import FP32, NIBBLE4
from repro.layers import (
    Add,
    AvgPool2D,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    InputLayer,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.layers.im2col import col2im, conv_output_hw, im2col

from tests.conftest import run_layer


class TestShapeInference:
    def test_conv_same_padding(self):
        assert Conv2D(16, 3, pad=1).infer_shape([(8, 3, 32, 32)]) == (8, 16, 32, 32)

    def test_conv_stride(self):
        assert Conv2D(96, 11, stride=4).infer_shape([(1, 3, 227, 227)]) == (1, 96, 55, 55)

    def test_conv_rejects_too_small(self):
        with pytest.raises(ValueError):
            Conv2D(4, 7).infer_shape([(1, 3, 5, 5)])

    def test_maxpool(self):
        assert MaxPool2D(2, 2).infer_shape([(4, 8, 16, 16)]) == (4, 8, 8, 8)

    def test_maxpool_overlapping(self):
        assert MaxPool2D(3, 2).infer_shape([(4, 8, 13, 13)]) == (4, 8, 6, 6)

    def test_dense_flattens(self):
        assert Dense(10).infer_shape([(4, 8, 2, 2)]) == (4, 10)

    def test_concat_channels(self):
        shapes = [(2, 3, 4, 4), (2, 5, 4, 4)]
        assert Concat().infer_shape(shapes) == (2, 8, 4, 4)

    def test_concat_rejects_mismatched_spatial(self):
        with pytest.raises(ValueError):
            Concat().infer_shape([(2, 3, 4, 4), (2, 3, 5, 5)])

    def test_add_rejects_mismatch(self):
        with pytest.raises(ValueError):
            Add().infer_shape([(2, 3, 4, 4), (2, 4, 4, 4)])

    def test_flatten(self):
        assert Flatten().infer_shape([(2, 3, 4, 5)]) == (2, 60)

    def test_gap(self):
        assert GlobalAvgPool2D().infer_shape([(2, 7, 9, 9)]) == (2, 7, 1, 1)

    def test_loss_needs_2d(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().infer_shape([(2, 3, 4, 4)])

    def test_input_layer_takes_no_inputs(self):
        with pytest.raises(ValueError):
            InputLayer((1, 3, 4, 4)).infer_shape([(1, 3, 4, 4)])


class TestConstructorValidation:
    def test_conv_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            Conv2D(0, 3)

    def test_conv_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            Conv2D(4, 3, stride=0)

    def test_conv_rejects_negative_pad(self):
        with pytest.raises(ValueError):
            Conv2D(4, 3, pad=-1)

    def test_pool_rejects_huge_window(self):
        with pytest.raises(ValueError):
            MaxPool2D(17)  # 289 positions > 8-bit argmax

    def test_dropout_rejects_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_lrn_rejects_even_size(self):
        with pytest.raises(ValueError):
            LocalResponseNorm(size=4)

    def test_bn_rejects_momentum(self):
        with pytest.raises(ValueError):
            BatchNorm2D(momentum=1.0)

    def test_dense_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Dense(0)


class TestBackwardNeedsMetadata:
    """Paper Figure 4: which of X/Y each backward pass reads."""

    def test_relu_needs_only_output(self):
        assert not ReLU().backward_needs_input
        assert ReLU().backward_needs_output

    def test_conv_needs_only_input(self):
        layer = Conv2D(4, 3)
        assert layer.backward_needs_input
        assert not layer.backward_needs_output

    def test_dense_needs_only_input(self):
        assert Dense(4).backward_needs_input
        assert not Dense(4).backward_needs_output

    def test_maxpool_baseline_needs_both(self):
        layer = MaxPool2D(2)
        assert layer.backward_needs_input
        assert layer.backward_needs_output

    def test_maxpool_runtime_needs_neither(self):
        layer = MaxPool2D(2)
        assert layer.runtime_backward_needs_input is False
        assert layer.runtime_backward_needs_output is False

    def test_maxpool_argmax_spec_is_4bit(self):
        spec = MaxPool2D(3, 2).argmax_map_spec((2, 4, 5, 5))
        assert spec.dtype is NIBBLE4
        assert spec.shape == (2, 4, 5, 5)

    def test_avgpool_needs_nothing(self):
        layer = AvgPool2D(2)
        assert not layer.backward_needs_input
        assert not layer.backward_needs_output

    def test_lrn_needs_both(self):
        layer = LocalResponseNorm()
        assert layer.backward_needs_input
        assert layer.backward_needs_output

    def test_inplace_support(self):
        assert ReLU().supports_inplace
        assert Dropout().supports_inplace
        assert not Conv2D(4, 3).supports_inplace
        assert not MaxPool2D(2).supports_inplace


class TestKernels:
    def test_relu_clamps(self, rng):
        x = rng.normal(0, 1, (3, 4)).astype(np.float32)
        y, _ = run_layer(ReLU(), [x])
        assert (y >= 0).all()
        np.testing.assert_allclose(y, np.maximum(x, 0))

    def test_relu_backward_accepts_bool_mask(self, rng):
        layer = ReLU()
        x = rng.normal(0, 1, (3, 4)).astype(np.float32)
        y, ctx = run_layer(layer, [x])
        dy = rng.normal(0, 1, (3, 4)).astype(np.float32)
        (dx_from_y,), _ = layer.backward(dy, {}, ctx)
        ctx.output_value = y > 0  # the Binarize mask
        (dx_from_mask,), _ = layer.backward(dy, {}, ctx)
        np.testing.assert_array_equal(dx_from_y, dx_from_mask)

    def test_maxpool_matches_naive(self, rng):
        x = rng.normal(0, 1, (2, 3, 6, 6)).astype(np.float32)
        y, _ = run_layer(MaxPool2D(2, 2), [x])
        naive = x.reshape(2, 3, 3, 2, 3, 2).max(axis=(3, 5))
        np.testing.assert_allclose(y, naive)

    def test_maxpool_argmax_in_nibble_range(self, rng):
        x = rng.normal(0, 1, (2, 2, 9, 9)).astype(np.float32)
        _, ctx = run_layer(MaxPool2D(3, 3), [x])
        argmax = ctx.state["argmax"]
        assert argmax.max() <= 8  # 3x3 window

    def test_avgpool_matches_naive(self, rng):
        x = rng.normal(0, 1, (2, 3, 6, 6)).astype(np.float32)
        y, _ = run_layer(AvgPool2D(2, 2), [x])
        naive = x.reshape(2, 3, 3, 2, 3, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(y, naive, rtol=1e-6)

    def test_conv_matches_naive(self, rng):
        x = rng.normal(0, 1, (1, 2, 5, 5)).astype(np.float32)
        layer = Conv2D(3, 3)
        params = layer.init_params([x.shape], rng)
        y, _ = run_layer(layer, [x], params)
        w, bias = params["w"], params["b"]
        naive = np.zeros((1, 3, 3, 3), np.float32)
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    naive[0, f, i, j] = (patch * w[f]).sum() + bias[f]
        np.testing.assert_allclose(y, naive, rtol=1e-4, atol=1e-5)

    def test_batchnorm_normalises(self, rng):
        layer = BatchNorm2D()
        x = rng.normal(3.0, 2.0, (8, 4, 5, 5)).astype(np.float32)
        params = layer.init_params([x.shape], rng)
        y, _ = run_layer(layer, [x], params)
        np.testing.assert_allclose(y.mean(axis=(0, 2, 3)), 0, atol=1e-5)
        np.testing.assert_allclose(y.std(axis=(0, 2, 3)), 1, atol=1e-3)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        layer = BatchNorm2D(momentum=0.0)  # running stats = last batch
        x = rng.normal(0, 1, (8, 2, 4, 4)).astype(np.float32)
        params = layer.init_params([x.shape], rng)
        run_layer(layer, [x], params, train=True)
        y_eval, _ = run_layer(layer, [x], params, train=False)
        y_train, _ = run_layer(layer, [x], params, train=True)
        np.testing.assert_allclose(y_eval, y_train, rtol=1e-3, atol=1e-4)

    def test_dropout_eval_is_identity(self, rng):
        x = rng.normal(0, 1, (4, 6)).astype(np.float32)
        y, _ = run_layer(Dropout(0.5), [x], train=False)
        np.testing.assert_array_equal(y, x)

    def test_dropout_preserves_expectation(self, rng):
        x = np.ones((200, 200), dtype=np.float32)
        y, _ = run_layer(Dropout(0.3, seed=1), [x])
        assert abs(y.mean() - 1.0) < 0.02

    def test_loss_is_log_classes_at_init(self, rng):
        layer = SoftmaxCrossEntropy()
        logits = np.zeros((16, 10), dtype=np.float32)
        layer.set_labels(rng.integers(0, 10, 16))
        y, _ = run_layer(layer, [logits])
        np.testing.assert_allclose(y[0], np.log(10), rtol=1e-5)

    def test_loss_batch_mismatch(self):
        layer = SoftmaxCrossEntropy()
        layer.set_labels(np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError):
            run_layer(layer, [np.zeros((4, 2), np.float32)])

    def test_loss_requires_labels(self):
        layer = SoftmaxCrossEntropy()
        with pytest.raises(RuntimeError):
            run_layer(layer, [np.zeros((4, 2), np.float32)])


class TestIm2Col:
    def test_roundtrip_adjoint(self, rng):
        # <im2col(x), c> == <x, col2im(c)> (adjoint property).
        x = rng.normal(0, 1, (2, 3, 6, 6)).astype(np.float64)
        cols = rng.normal(0, 1, (2, 3 * 9, 36)).astype(np.float64)
        lhs = (im2col(x, 3, 3, 1, 1) * cols).sum()
        rhs = (x * col2im(cols, x.shape, 3, 3, 1, 1)).sum()
        assert abs(lhs - rhs) < 1e-9

    def test_output_hw(self):
        assert conv_output_hw(227, 227, 11, 11, 4, 0) == (55, 55)
        assert conv_output_hw(224, 224, 3, 3, 1, 1) == (224, 224)

    def test_output_hw_rejects_nonfit(self):
        with pytest.raises(ValueError):
            conv_output_hw(2, 2, 5, 5, 1, 0)

    def test_flops_counts(self):
        conv = Conv2D(16, 3, pad=1)
        in_shape = (1, 8, 10, 10)
        out_shape = conv.infer_shape([in_shape])
        assert conv.flops([in_shape], out_shape) == 2 * 16 * 100 * 8 * 9
        dense = Dense(100)
        assert dense.flops([(2, 50)], (2, 100)) == 2 * 2 * 50 * 100


class TestWidePoolWindows:
    def test_5x5_window_uses_uint8_argmax(self):
        from repro.dtypes import UINT8

        layer = MaxPool2D((5, 5), 5)
        spec = layer.argmax_map_spec((1, 2, 3, 3))
        assert spec.dtype is UINT8

    def test_5x5_forward_backward(self, rng):
        layer = MaxPool2D(5, 5)
        x = rng.normal(0, 1, (2, 2, 10, 10)).astype(np.float32)
        y, ctx = run_layer(layer, [x])
        naive = x.reshape(2, 2, 2, 5, 2, 5).max(axis=(3, 5))
        np.testing.assert_allclose(y, naive)
        dy = rng.normal(0, 1, y.shape).astype(np.float32)
        (dx,), _ = layer.backward(dy, {}, ctx)
        # Gradient mass is conserved (each window routes dy to one cell).
        np.testing.assert_allclose(dx.sum(), dy.sum(), rtol=1e-5)

    def test_window_over_256_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2D(17)
