"""Recurrent layer library: unrolled steps, weight tying, gradients.

The weight-tying contract is the delicate part: every ``LSTMStep`` /
``RNNStep`` sharing one cell must expose the *same ndarray objects* as
parameters, so that (a) the executor's flat gradient dict carries one
per-step entry each, and (b) momentum linearity makes the sequential
per-step tied updates equal the single summed-gradient update a fused
implementation would apply.
"""

import numpy as np
import pytest

from repro.layers import (
    Dense,
    LSTMCell,
    LSTMStep,
    RNNCell,
    RNNStep,
    SoftmaxCrossEntropy,
    StateSlice,
    TimeSlice,
)
from repro.graph.builder import GraphBuilder
from repro.models import build_model
from repro.train.executor import GraphExecutor

B, T, F, H, C = 4, 3, 5, 6, 3
SEED = 7


def _sequence_graph(cell_kind: str):
    b = GraphBuilder(f"{cell_kind}_seq", (B, T, F))
    if cell_kind == "lstm":
        cell = LSTMCell(F, H)
        steps = [LSTMStep(cell, t) for t in range(T)]
    else:
        cell = RNNCell(F, H)
        steps = [RNNStep(cell, t) for t in range(T)]
    state = None
    for t, step in enumerate(steps):
        x_t = b.add(TimeSlice(t, T), b.input, name=f"x{t}")
        inputs = [x_t] if state is None else [x_t, state]
        state = b.add(step, inputs, name=f"step{t}")
    x = state
    if cell_kind == "lstm":
        x = b.add(StateSlice(H, part="h"), x, name="hT")
    x = b.add(Dense(C), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


def _batch(rng):
    x = rng.normal(0, 1, (B, T, F)).astype(np.float32)
    y = rng.integers(0, C, B).astype(np.int64)
    return x, y


@pytest.fixture(scope="module", params=["lstm", "rnn"])
def trained(request):
    graph = _sequence_graph(request.param)
    executor = GraphExecutor(graph, seed=SEED)
    rng = np.random.default_rng(0)
    x, y = _batch(rng)
    loss = executor.forward(x, y, train=True)
    grads = executor.backward()
    return request.param, graph, executor, (x, y), loss, grads


class TestWeightTying:
    def test_steps_share_parameter_arrays(self, trained):
        _, _, executor, _, _, _ = trained
        params = executor.parameters()
        for pname in ("Wx", "Wh", "b"):
            for t in range(1, T):
                assert params[f"step{t}.{pname}"] is params[f"step0.{pname}"]

    def test_every_step_reports_a_gradient(self, trained):
        _, _, _, _, _, grads = trained
        for pname in ("Wx", "Wh", "b"):
            for t in range(T):
                assert f"step{t}.{pname}" in grads

    def test_two_executors_same_seed_draw_identical_params(self, trained):
        kind, graph, executor, _, _, _ = trained
        fresh = GraphExecutor(_sequence_graph(kind), seed=SEED)
        a, b = executor.parameters(), fresh.parameters()
        assert set(a) == set(b)
        for name in a:
            np.testing.assert_array_equal(a[name], b[name])

    def test_different_seed_draws_different_params(self, trained):
        kind, _, executor, _, _, _ = trained
        other = GraphExecutor(_sequence_graph(kind), seed=SEED + 1)
        assert not np.array_equal(executor.parameters()["step0.Wx"],
                                  other.parameters()["step0.Wx"])


class TestGradients:
    def test_tied_gradients_match_finite_differences(self, trained):
        kind, graph, executor, (x, y), _, grads = trained
        params = executor.parameters()
        eps = 1e-3
        rng = np.random.default_rng(1)
        # The analytic tied gradient is the sum of per-step entries; the
        # numerical one perturbs the shared array (all steps at once).
        for pname in ("Wx", "Wh", "b"):
            tied = sum(grads[f"step{t}.{pname}"] for t in range(T))
            arr = params[f"step0.{pname}"]
            flat_positions = rng.choice(arr.size, size=min(6, arr.size),
                                        replace=False)
            for pos in flat_positions:
                idx = np.unravel_index(pos, arr.shape)
                old = arr[idx]
                arr[idx] = old + eps
                lp = executor.forward(x, y, train=True)
                arr[idx] = old - eps
                lm = executor.forward(x, y, train=True)
                arr[idx] = old
                numeric = (lp - lm) / (2 * eps)
                assert numeric == pytest.approx(float(tied[idx]),
                                                rel=5e-2, abs=1e-4)

    def test_loss_decreases_under_sgd(self, trained):
        kind, _, _, _, _, _ = trained
        from repro.train import SGD, Trainer, make_synthetic_sequences

        graph = _sequence_graph(kind)
        train_set, test_set = make_synthetic_sequences(
            num_samples=64, num_classes=C, seq_len=T, input_size=F, seed=3)
        trainer = Trainer(graph, None, SGD(lr=0.05, momentum=0.9), seed=0)
        result = trainer.train(train_set, test_set, epochs=3)
        assert result.epoch_losses[-1] < result.epoch_losses[0]


class TestTimeAndStateSlices:
    def test_time_slice_extracts_contiguous_step(self, rng):
        x = rng.normal(0, 1, (B, T, F)).astype(np.float32)
        layer = TimeSlice(1, T)
        y = layer.forward([x], {}, None, True)
        np.testing.assert_array_equal(y, x[:, 1, :])
        assert y.flags["C_CONTIGUOUS"]

    def test_time_slice_backward_scatters_zero_elsewhere(self, rng):
        layer = TimeSlice(1, T)
        dy = rng.normal(0, 1, (B, F)).astype(np.float32)
        dxs, dparams = layer.backward(dy, {}, None)
        assert dparams == {}
        (dx,) = dxs
        np.testing.assert_array_equal(dx[:, 1, :], dy)
        assert not dx[:, 0, :].any() and not dx[:, 2, :].any()

    def test_state_slice_takes_h_and_zero_pads_c(self, rng):
        hc = rng.normal(0, 1, (B, 2 * H)).astype(np.float32)
        layer = StateSlice(H, part="h")
        y = layer.forward([hc], {}, None, True)
        np.testing.assert_array_equal(y, hc[:, :H])
        dy = rng.normal(0, 1, (B, H)).astype(np.float32)
        dxs, _ = layer.backward(dy, {}, None)
        (dx,) = dxs
        np.testing.assert_array_equal(dx[:, :H], dy)
        assert not dx[:, H:].any()


class TestRegistryModels:
    @pytest.mark.parametrize("name,kwargs", [
        ("lstm", dict(batch_size=4, num_classes=3, seq_len=4,
                      input_size=5, hidden_size=6)),
        ("rnn", dict(batch_size=4, num_classes=3, seq_len=4,
                     input_size=5, hidden_size=6)),
        ("densenet", dict(batch_size=2, num_classes=3, image_size=8,
                          init_channels=4, growth=4, blocks=2,
                          block_layers=2)),
    ])
    def test_builds_and_takes_a_training_step(self, name, kwargs):
        graph = build_model(name, **kwargs)
        executor = GraphExecutor(graph, seed=0)
        rng = np.random.default_rng(0)
        shape = graph.node(graph.input_id).output_shape
        x = rng.normal(0, 1, shape).astype(np.float32)
        y = rng.integers(0, kwargs["num_classes"], shape[0]).astype(np.int64)
        loss = executor.forward(x, y, train=True)
        grads = executor.backward()
        assert np.isfinite(loss)
        assert grads and all(np.isfinite(g).all() for g in grads.values())
