"""Tests for the static memory-sharing allocator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.liveness import LiveTensor, ROLE_FEATURE_MAP
from repro.memory import (
    POLICY_FIRST_FIT,
    POLICY_GREEDY_SIZE,
    POLICY_NO_SHARING,
    StaticAllocator,
    static_footprint,
)
from repro.tensor import TensorSpec


def lt(name, elements, birth, death, shareable=True):
    return LiveTensor(
        TensorSpec(name, (elements,)), birth, death, 0, ROLE_FEATURE_MAP,
        shareable,
    )


class TestPaperExample:
    """Figure 7: five tensors, baseline groups total 18 MB."""

    MB = 1024 * 1024 // 4  # elements per MB of FP32

    def test_baseline_18mb(self):
        # X stashed across the whole step; A..D immediately consumed, each
        # pairwise disjoint but overlapping X.
        tensors = [
            lt("X", 10 * self.MB, 0, 9),
            lt("A", 8 * self.MB, 2, 3),
            lt("B", 6 * self.MB, 4, 5),
            lt("C", 8 * self.MB, 6, 7),
            lt("D", 2 * self.MB, 8, 8),
        ]
        result = StaticAllocator().allocate(tensors)
        assert result.total_bytes == 18 * 1024 * 1024
        assert len(result.groups) == 2

    def test_after_encoding_12mb(self):
        # SSDC splits X into FP32 (forward only), 2 MB encoded (the gap),
        # and a decoded copy at the backward use — Figure 7(b).  The FP32
        # pieces become immediately-consumed and join A..D's group; only
        # the 2 MB encoded tensor stays stashed.
        tensors = [
            lt("X_fp32", 10 * self.MB, 0, 1),
            lt("X_enc", 2 * self.MB, 1, 9),
            lt("X_dec", 10 * self.MB, 9, 9),
            lt("A", 8 * self.MB, 2, 3),
            lt("B", 6 * self.MB, 4, 5),
            lt("C", 8 * self.MB, 6, 7),
            lt("D", 2 * self.MB, 8, 8),
        ]
        result = StaticAllocator().allocate(tensors)
        assert result.total_bytes == 12 * 1024 * 1024


class TestCorrectness:
    def test_group_members_never_overlap(self):
        rng = np.random.default_rng(3)
        tensors = []
        for i in range(200):
            birth = int(rng.integers(0, 50))
            death = birth + int(rng.integers(0, 20))
            tensors.append(lt(f"t{i}", int(rng.integers(1, 1000)), birth, death))
        result = StaticAllocator(horizon=80).allocate(tensors)
        for group in result.groups:
            for i, a in enumerate(group.members):
                for b in group.members[i + 1:]:
                    assert not a.overlaps(b), (a.spec.name, b.spec.name)

    def test_every_tensor_placed_once(self):
        tensors = [lt(f"t{i}", 10 + i, i % 5, i % 5 + 2) for i in range(50)]
        result = StaticAllocator(horizon=10).allocate(tensors)
        placed = [t.spec.name for g in result.groups for t in g.members]
        assert sorted(placed) == sorted(t.spec.name for t in tensors)

    def test_footprint_bounds(self):
        tensors = [lt(f"t{i}", 100 + i, i, i + 1) for i in range(20)]
        total = static_footprint(tensors)
        assert total >= max(t.size_bytes for t in tensors)
        assert total <= sum(t.size_bytes for t in tensors)

    def test_non_shareable_gets_dedicated_group(self):
        tensors = [
            lt("pinned", 100, 0, 0, shareable=False),
            lt("other", 100, 5, 5),
        ]
        result = StaticAllocator().allocate(tensors)
        pinned_group = result.group_of("pinned")
        assert pinned_group.members[0].spec.name == "pinned"
        assert len(pinned_group.members) == 1

    def test_disjoint_lifetimes_share(self):
        tensors = [lt("a", 100, 0, 1), lt("b", 100, 2, 3)]
        assert static_footprint(tensors) == 400  # one shared group

    def test_adjacent_lifetimes_do_not_share(self):
        # Inclusive intervals: death==birth of the next means both live at
        # that step (producer/consumer of one op cannot alias).
        tensors = [lt("a", 100, 0, 2), lt("b", 100, 2, 3)]
        assert static_footprint(tensors) == 800

    def test_group_size_is_max_member(self):
        tensors = [lt("big", 1000, 0, 1), lt("small", 10, 5, 6)]
        result = StaticAllocator().allocate(tensors)
        assert len(result.groups) == 1
        assert result.groups[0].size_bytes == 4000

    def test_policies(self):
        tensors = [lt(f"t{i}", 50 * (i + 1), 2 * i, 2 * i + 1) for i in range(6)]
        none = static_footprint(tensors, POLICY_NO_SHARING)
        greedy = static_footprint(tensors, POLICY_GREEDY_SIZE)
        first = static_footprint(tensors, POLICY_FIRST_FIT)
        assert greedy <= first <= none

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            StaticAllocator("magic")

    def test_horizon_too_short(self):
        with pytest.raises(ValueError):
            StaticAllocator(horizon=3).allocate([lt("a", 1, 0, 5)])

    def test_sharing_ratio(self):
        tensors = [lt("a", 100, 0, 1), lt("b", 100, 2, 3)]
        result = StaticAllocator().allocate(tensors)
        assert result.sharing_ratio == pytest.approx(2.0)

    def test_group_of_missing(self):
        result = StaticAllocator().allocate([lt("a", 1, 0, 0)])
        with pytest.raises(KeyError):
            result.group_of("zzz")


class TestAllocatorProperties:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 500),   # elements
                st.integers(0, 30),    # birth
                st.integers(0, 10),    # duration
                st.booleans(),         # shareable
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_invariants(self, raw):
        tensors = [
            lt(f"t{i}", e, b, b + d, s) for i, (e, b, d, s) in enumerate(raw)
        ]
        result = StaticAllocator().allocate(tensors)
        # Placement completeness.
        assert sum(len(g.members) for g in result.groups) == len(tensors)
        # No overlap within any group.
        for group in result.groups:
            for i, a in enumerate(group.members):
                for b2 in group.members[i + 1:]:
                    assert not a.overlaps(b2)
        # Footprint bounds.
        assert result.total_bytes <= sum(t.size_bytes for t in tensors)
        assert result.total_bytes >= max(t.size_bytes for t in tensors)
        # Dynamic peak is a lower bound on any correct static allocation.
        from repro.memory import dynamic_footprint

        assert result.total_bytes >= dynamic_footprint(tensors)
