"""Tests for the dynamic-allocation simulator, planner and footprint report."""

import pytest

from repro.graph import TrainingSchedule
from repro.graph.liveness import LiveTensor, ROLE_FEATURE_MAP
from repro.memory import (
    CLASS_GRADIENT,
    CLASS_IMMEDIATE,
    CLASS_SAVED_STATE,
    CLASS_STASHED,
    CLASS_WEIGHT,
    MemoryPlan,
    build_memory_plan,
    dynamic_footprint,
    measure_dynamic,
    measure_static,
    memory_footprint_ratio,
    simulate_dynamic,
)
from repro.tensor import TensorSpec


def lt(name, elements, birth, death):
    return LiveTensor(TensorSpec(name, (elements,)), birth, death, 0,
                      ROLE_FEATURE_MAP)


class TestDynamicSimulator:
    def test_peak_of_overlapping(self):
        tensors = [lt("a", 100, 0, 5), lt("b", 50, 3, 8), lt("c", 25, 6, 9)]
        result = simulate_dynamic(tensors)
        assert result.peak_bytes == 600  # a+b live at t in [3,5]
        assert 3 <= result.peak_time <= 5

    def test_empty(self):
        assert simulate_dynamic([]).peak_bytes == 0

    def test_timeline_length(self):
        result = simulate_dynamic([lt("a", 1, 0, 4)], horizon=10)
        assert len(result.timeline) == 10

    def test_average_below_peak(self):
        result = simulate_dynamic([lt("a", 100, 0, 1), lt("b", 10, 5, 9)])
        assert result.average_bytes < result.peak_bytes

    def test_horizon_violation(self):
        with pytest.raises(ValueError):
            simulate_dynamic([lt("a", 1, 0, 5)], horizon=4)

    def test_dynamic_never_exceeds_static(self, tiny_graph):
        from repro.memory import static_footprint

        plan = build_memory_plan(tiny_graph)
        assert dynamic_footprint(plan.tensors) <= static_footprint(plan.tensors)


class TestPlanner:
    def test_cntk_baseline_excludes_weights(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        classes = {plan.classify(t) for t in plan.tensors}
        assert CLASS_WEIGHT not in classes

    def test_full_plan_includes_weights(self, tiny_graph):
        plan = build_memory_plan(tiny_graph, include_weights=True,
                                 include_workspace=True)
        by_class = plan.bytes_by_class()
        assert by_class[CLASS_WEIGHT] > 0
        assert by_class["workspace"] > 0

    def test_stashed_vs_immediate_split(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        stashed = {t.spec.name for t in plan.stashed_feature_maps()}
        # relu outputs and pool inputs/outputs are stashed; conv1.out is not.
        assert "relu1.out" in stashed
        assert "relu2.out" in stashed
        assert "conv1.out" not in stashed

    def test_investigation_marks_stashes_unshareable(self, tiny_graph):
        plan = build_memory_plan(tiny_graph, investigation=True)
        for t in plan.tensors:
            if plan.classify(t) == CLASS_STASHED:
                assert not t.shareable

    def test_gradient_maps_classified(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        assert plan.bytes_by_class()[CLASS_GRADIENT] > 0

    def test_clone_is_independent(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        other = plan.clone()
        other.tensors[0].death += 1
        assert plan.tensors[0].death != other.tensors[0].death

    def test_total_bytes(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        assert plan.total_bytes() == sum(t.size_bytes for t in plan.tensors)

    def test_all_classes_present_as_keys(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        from repro.memory import ALL_CLASSES

        assert set(plan.by_class()) == set(ALL_CLASSES)


class TestFootprintReport:
    def test_static_report(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        report = measure_static(plan)
        assert report.allocated_bytes > 0
        assert report.allocated_bytes <= report.raw_total_bytes
        assert report.model == tiny_graph.name

    def test_dynamic_report_smaller(self, tiny_graph):
        plan = build_memory_plan(tiny_graph)
        assert (measure_dynamic(plan).allocated_bytes
                <= measure_static(plan).allocated_bytes)

    def test_fractions_sum_to_one(self, tiny_graph):
        plan = build_memory_plan(tiny_graph, include_weights=True)
        report = measure_static(plan)
        total = sum(
            report.fraction(c) for c in report.raw_bytes_by_class
        )
        assert total == pytest.approx(1.0)

    def test_format_table(self, tiny_graph):
        report = measure_static(build_memory_plan(tiny_graph))
        text = report.format_table()
        assert "stashed_feature_maps" in text

    def test_mfr(self):
        assert memory_footprint_ratio(200, 100) == 2.0
        with pytest.raises(ValueError):
            memory_footprint_ratio(100, 0)
