"""Tests for the hybrid memory planner (encode x recompute x swap)."""

import pytest

from repro.core import GistConfig
from repro.core.policy import (
    HybridPolicy,
    STRATEGY_GIST,
    STRATEGY_HYBRID,
    STRATEGY_RECOMPUTE,
    STRATEGY_SHARED_CONCAT,
    STRATEGY_SWAP,
)
from repro.graph.schedule import TrainingSchedule
from repro.memory import (
    ALL_CHOICES,
    CHOICE_GIST,
    CHOICE_RECOMPUTE,
    CHOICE_SWAP,
    NON_RECOMPUTABLE_KINDS,
    build_hybrid_plan,
    find_recompute_chain,
)
from repro.memory.hybrid import SOURCE_COMPATIBLE_CHOICES
from repro.models import resnet_cifar, scaled_vgg

PURE_STRATEGIES = (STRATEGY_GIST, STRATEGY_RECOMPUTE, STRATEGY_SWAP,
                   STRATEGY_SHARED_CONCAT)


@pytest.fixture(scope="module")
def graph():
    return scaled_vgg(batch_size=8)


@pytest.fixture(scope="module")
def hybrid(graph):
    return build_hybrid_plan(graph)


@pytest.fixture(scope="module")
def recompute_arm(graph):
    # A generous budget so the pure-recompute arm actually selects chains.
    return build_hybrid_plan(
        graph, HybridPolicy(strategy=STRATEGY_RECOMPUTE, cost_budget_frac=0.3)
    )


class TestSelection:
    def test_reduces_footprint(self, hybrid):
        assert hybrid.allocated_bytes < hybrid.baseline_allocated_bytes
        assert hybrid.footprint_ratio > 1.0

    def test_dominates_every_pure_arm(self, hybrid):
        assert set(hybrid.pure_footprints) == set(PURE_STRATEGIES)
        for strategy, footprint in hybrid.pure_footprints.items():
            assert hybrid.allocated_bytes <= footprint, strategy

    def test_budget_respected(self, hybrid, recompute_arm):
        for plan in (hybrid, recompute_arm):
            assert plan.total_cost_s <= plan.budget_s * (1 + 1e-9) + 1e-12
            assert plan.overhead_frac <= plan.policy.cost_budget_frac + 1e-9

    def test_fallback_adoption_matches_pure_footprint(self, hybrid):
        if hybrid.fallback_strategy is not None:
            assert hybrid.fallback_strategy in PURE_STRATEGIES
            assert (hybrid.allocated_bytes
                    == hybrid.pure_footprints[hybrid.fallback_strategy])

    def test_pure_arm_uses_only_its_choice(self, graph):
        for strategy, choice in (
            (STRATEGY_GIST, CHOICE_GIST),
            (STRATEGY_RECOMPUTE, CHOICE_RECOMPUTE),
            (STRATEGY_SWAP, CHOICE_SWAP),
        ):
            plan = build_hybrid_plan(graph, HybridPolicy(strategy=strategy))
            assert {d.choice for d in plan.decisions.values()} <= {choice}
            assert not plan.pure_footprints  # only the hybrid arm compares

    def test_lossless_policy_yields_lossless_plan(self, hybrid):
        assert hybrid.policy.lossless
        assert hybrid.lossless
        assert all(d.lossless for d in hybrid.decisions.values())

    def test_deterministic(self, graph, hybrid):
        again = build_hybrid_plan(graph)
        assert again.decisions == hybrid.decisions
        assert again.allocated_bytes == hybrid.allocated_bytes
        assert again.fallback_strategy == hybrid.fallback_strategy

    def test_bytes_by_choice_covers_all_decisions(self, hybrid):
        by_choice = hybrid.bytes_by_choice()
        assert set(by_choice) == set(ALL_CHOICES)
        assert (sum(by_choice.values())
                == sum(d.fp32_bytes for d in hybrid.decisions.values()))

    def test_decisions_save_bytes(self, hybrid):
        for decision in hybrid.decisions.values():
            assert decision.savings_bytes > 0
            assert decision.cost_s >= 0.0

    def test_bad_strategy_rejected(self):
        with pytest.raises(ValueError):
            HybridPolicy(strategy="prayer")
        with pytest.raises(ValueError):
            HybridPolicy(cost_budget_frac=-0.1)


class TestRecomputeChains:
    def test_chains_selected(self, recompute_arm):
        assert any(d.choice == CHOICE_RECOMPUTE
                   for d in recompute_arm.decisions.values())
        assert recompute_arm.recompute_directives()

    def test_chain_links_are_valid(self, graph, recompute_arm):
        for nid, directive in recompute_arm.recompute_directives().items():
            assert directive.chain[-1] == nid
            prev = directive.source_id
            for chain_id in directive.chain:
                node = graph.node(chain_id)
                assert node.kind not in NON_RECOMPUTABLE_KINDS
                assert list(node.inputs) == [prev]
                prev = chain_id

    def test_sources_are_value_exact(self, hybrid):
        for decision in hybrid.decisions.values():
            if decision.choice != CHOICE_RECOMPUTE:
                continue
            source = hybrid.decisions.get(decision.source_id)
            assert source is None or source.choice in SOURCE_COMPATIBLE_CHOICES

    def test_no_lossy_ancestor_even_with_dpr(self, graph):
        # Regression: with DPR on, the gist option is value-destroying, so
        # no recompute decision may read from a DPR/binarize-encoded source.
        plan = build_hybrid_plan(
            graph, HybridPolicy(gist=GistConfig.full(dpr_format="fp8"))
        )
        for decision in plan.decisions.values():
            if decision.choice != CHOICE_RECOMPUTE:
                continue
            source = plan.decisions.get(decision.source_id)
            assert source is None or source.choice in SOURCE_COMPATIBLE_CHOICES
            if source is not None:
                assert source.lossless

    def test_input_and_loss_are_never_targets(self, tiny_graph):
        schedule = TrainingSchedule(tiny_graph)
        assert find_recompute_chain(
            tiny_graph, schedule, tiny_graph.input_id, 0) is None
        assert find_recompute_chain(
            tiny_graph, schedule, tiny_graph.output_id, 0) is None

    def test_multi_input_target_rejected(self):
        g = resnet_cifar(14, batch_size=2)
        schedule = TrainingSchedule(g)
        join = next(n for n in g.nodes if len(n.inputs) > 1)
        assert find_recompute_chain(
            g, schedule, join.node_id,
            schedule.backward_time(join.node_id)) is None

    def test_chains_never_cross_joins(self):
        # Fan-in (residual add) nodes are multi-input, so a chain can
        # neither contain nor walk through one.
        g = resnet_cifar(14, batch_size=2)
        plan = build_hybrid_plan(
            g, HybridPolicy(strategy=STRATEGY_HYBRID, cost_budget_frac=0.3)
        )
        for directive in plan.recompute_directives().values():
            for chain_id in directive.chain:
                assert len(g.node(chain_id).inputs) == 1


class TestBranchyGraphs:
    def test_resnet_plan_is_clean_and_smaller(self):
        from repro.verify import check_hybrid_plan

        g = resnet_cifar(14, batch_size=2)
        plan = build_hybrid_plan(g)
        assert check_hybrid_plan(plan) == []
        assert plan.allocated_bytes <= min(plan.pure_footprints.values())
