"""Tests for the recompute/checkpointing baseline."""

import pytest

from repro.memory import (
    StaticAllocator,
    build_memory_plan,
    build_recompute_plan,
    trunk_nodes,
)
from repro.models import scaled_vgg, tiny_cnn, vgg16


class TestTrunk:
    def test_chain_graph_trunk_is_whole_graph(self, tiny_graph):
        trunk = trunk_nodes(tiny_graph)
        assert len(trunk) == len(tiny_graph)

    def test_trunk_starts_at_input(self, tiny_graph):
        assert trunk_nodes(tiny_graph)[0] == tiny_graph.input_id

    def test_branching_stops_trunk(self):
        from repro.models import resnet_cifar

        g = resnet_cifar(14, batch_size=2)
        trunk = trunk_nodes(g)
        # The trunk ends where the first residual branch splits.
        assert len(trunk) < len(g) / 2


class TestRecomputePlan:
    def test_reduces_footprint(self):
        g = scaled_vgg(batch_size=8)
        alloc = StaticAllocator()
        base = alloc.allocate(build_memory_plan(g).tensors).total_bytes
        rec = alloc.allocate(build_recompute_plan(g).plan.tensors).total_bytes
        assert rec < base

    def test_checkpoints_plus_recomputed_cover_trunk_stashes(self):
        g = scaled_vgg(batch_size=8)
        plan = build_memory_plan(g)
        rp = build_recompute_plan(g)
        from repro.graph.liveness import ROLE_FEATURE_MAP
        from repro.memory import CLASS_STASHED

        trunk = set(trunk_nodes(g))
        stashed_trunk = {
            t.node_id
            for t in plan.tensors
            if t.role == ROLE_FEATURE_MAP
            and plan.classify(t) == CLASS_STASHED
            and t.node_id in trunk
        }
        covered = set(rp.checkpoints) | set(rp.recomputed)
        assert stashed_trunk == covered

    def test_recomputed_maps_become_immediate(self):
        g = scaled_vgg(batch_size=8)
        rp = build_recompute_plan(g)
        plan = rp.plan
        names = {t.spec.name: t for t in plan.tensors}
        for node_id in rp.recomputed:
            original = names[f"{g.node(node_id).name}.out"]
            rebuilt = names[f"{g.node(node_id).name}.out.recomp"]
            assert original.death < plan.schedule.forward_end
            assert rebuilt.birth >= plan.schedule.forward_end

    def test_extra_flops_counts_whole_segments(self):
        g = scaled_vgg(batch_size=8)
        rp = build_recompute_plan(g)
        # Re-running segments must include conv work, far exceeding the
        # flops of the (cheap) stashed relu maps themselves.
        relu_flops = sum(
            g.node(nid).layer.flops(g.node(nid).input_shapes(g),
                                    g.node(nid).output_shape)
            for nid in rp.recomputed
        )
        assert rp.extra_forward_flops > relu_flops

    def test_overhead_fraction_positive_and_bounded(self):
        g = vgg16(batch_size=64)
        rp = build_recompute_plan(g)
        ov = rp.overhead_frac(g)
        assert 0.05 < ov < 0.6  # re-runs most of one forward pass

    def test_segment_length_one_recomputes_nothing(self):
        g = scaled_vgg(batch_size=8)
        rp = build_recompute_plan(g, segment_length=1)
        assert rp.recomputed == ()
        assert rp.extra_forward_flops == 0

    def test_bad_segment_length(self):
        with pytest.raises(ValueError):
            build_recompute_plan(scaled_vgg(batch_size=8), segment_length=0)

    def test_longer_segments_save_more_pay_more(self):
        g = vgg16(batch_size=8)
        alloc = StaticAllocator()
        short = build_recompute_plan(g, segment_length=2)
        long = build_recompute_plan(g, segment_length=8)
        short_bytes = alloc.allocate(short.plan.tensors).total_bytes
        long_bytes = alloc.allocate(long.plan.tensors).total_bytes
        assert long_bytes <= short_bytes
        assert long.extra_forward_flops >= short.extra_forward_flops
