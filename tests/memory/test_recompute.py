"""Tests for the recompute/checkpointing baseline."""

import pytest

from repro.memory import (
    StaticAllocator,
    build_memory_plan,
    build_recompute_plan,
    chain_forward_flops,
    chain_forward_seconds,
    trunk_nodes,
)
from repro.models import scaled_vgg, tiny_cnn, vgg16


class TestTrunk:
    def test_chain_graph_trunk_is_whole_graph(self, tiny_graph):
        trunk = trunk_nodes(tiny_graph)
        assert len(trunk) == len(tiny_graph)

    def test_trunk_starts_at_input(self, tiny_graph):
        assert trunk_nodes(tiny_graph)[0] == tiny_graph.input_id

    def test_branching_stops_trunk(self):
        from repro.models import resnet_cifar

        g = resnet_cifar(14, batch_size=2)
        trunk = trunk_nodes(g)
        # The trunk ends where the first residual branch splits.
        assert len(trunk) < len(g) / 2


class TestRecomputePlan:
    def test_reduces_footprint(self):
        g = scaled_vgg(batch_size=8)
        alloc = StaticAllocator()
        base = alloc.allocate(build_memory_plan(g).tensors).total_bytes
        rec = alloc.allocate(build_recompute_plan(g).plan.tensors).total_bytes
        assert rec < base

    def test_checkpoints_plus_recomputed_cover_trunk_stashes(self):
        g = scaled_vgg(batch_size=8)
        plan = build_memory_plan(g)
        rp = build_recompute_plan(g)
        from repro.graph.liveness import ROLE_FEATURE_MAP
        from repro.memory import CLASS_STASHED

        trunk = set(trunk_nodes(g))
        stashed_trunk = {
            t.node_id
            for t in plan.tensors
            if t.role == ROLE_FEATURE_MAP
            and plan.classify(t) == CLASS_STASHED
            and t.node_id in trunk
        }
        covered = set(rp.checkpoints) | set(rp.recomputed)
        assert stashed_trunk == covered

    def test_recomputed_maps_become_immediate(self):
        g = scaled_vgg(batch_size=8)
        rp = build_recompute_plan(g)
        plan = rp.plan
        names = {t.spec.name: t for t in plan.tensors}
        for node_id in rp.recomputed:
            original = names[f"{g.node(node_id).name}.out"]
            rebuilt = names[f"{g.node(node_id).name}.out.recomp"]
            assert original.death < plan.schedule.forward_end
            assert rebuilt.birth >= plan.schedule.forward_end

    def test_extra_flops_counts_whole_segments(self):
        g = scaled_vgg(batch_size=8)
        rp = build_recompute_plan(g)
        # Re-running segments must include conv work, far exceeding the
        # flops of the (cheap) stashed relu maps themselves.
        relu_flops = sum(
            g.node(nid).layer.flops(g.node(nid).input_shapes(g),
                                    g.node(nid).output_shape)
            for nid in rp.recomputed
        )
        assert rp.extra_forward_flops > relu_flops

    def test_overhead_fraction_positive_and_bounded(self):
        g = vgg16(batch_size=64)
        rp = build_recompute_plan(g)
        ov = rp.overhead_frac(g)
        assert 0.05 < ov < 0.6  # re-runs most of one forward pass

    def test_segment_length_one_recomputes_nothing(self):
        g = scaled_vgg(batch_size=8)
        rp = build_recompute_plan(g, segment_length=1)
        assert rp.recomputed == ()
        assert rp.extra_forward_flops == 0

    def test_bad_segment_length(self):
        with pytest.raises(ValueError):
            build_recompute_plan(scaled_vgg(batch_size=8), segment_length=0)

    def test_bad_segment_rejection_leaves_graph_usable(self):
        g = scaled_vgg(batch_size=8)
        with pytest.raises(ValueError):
            build_recompute_plan(g, segment_length=-3)
        assert build_recompute_plan(g).plan.tensors  # graph still planable

    def test_longer_segments_save_more_pay_more(self):
        g = vgg16(batch_size=8)
        alloc = StaticAllocator()
        short = build_recompute_plan(g, segment_length=2)
        long = build_recompute_plan(g, segment_length=8)
        short_bytes = alloc.allocate(short.plan.tensors).total_bytes
        long_bytes = alloc.allocate(long.plan.tensors).total_bytes
        assert long_bytes <= short_bytes
        assert long.extra_forward_flops >= short.extra_forward_flops


class TestChainCost:
    """Accounting for explicit chain replays (the hybrid planner's unit)."""

    def test_flops_sum_over_members(self):
        g = scaled_vgg(batch_size=8)
        chain = [n.node_id for n in g.nodes if n.name in ("conv1_2",
                                                          "relu1_2")]
        per_node = [
            g.node(nid).layer.flops(g.node(nid).input_shapes(g),
                                    g.node(nid).output_shape)
            for nid in chain
        ]
        assert chain_forward_flops(g, chain) == sum(per_node)

    def test_empty_chain_is_free(self):
        g = scaled_vgg(batch_size=8)
        assert chain_forward_flops(g, []) == 0

    def test_seconds_monotone_in_chain_extension(self):
        g = scaled_vgg(batch_size=8)
        conv = g.node_by_name("conv2_1").node_id
        relu = g.node_by_name("relu2_1").node_id
        short = chain_forward_seconds(g, [relu])
        long = chain_forward_seconds(g, [conv, relu])
        assert 0.0 < short < long

    def test_conv_dominates_relu_cost(self):
        # The planner's ratio ordering depends on convs costing far more
        # to replay than the elementwise ops whose maps they rebuild.
        g = scaled_vgg(batch_size=8)
        conv = chain_forward_seconds(g, [g.node_by_name("conv3_1").node_id])
        relu = chain_forward_seconds(g, [g.node_by_name("relu3_1").node_id])
        assert conv > relu
