"""Shared-concat buffers: chain discovery, planner arm, aliasing safety.

The DenseNet trick: along a concat chain linked through each concat's
*first* input, ``np.concatenate`` copies the running state to the front,
so every member's stash equals a leading-channel slice of the terminal's
stash.  The planner prices members at zero resident bytes, the allocator
folds the whole chain into one aliased region sized by the terminal, and
the executor re-slices on backward — bit-exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import HybridPolicy, STRATEGY_SHARED_CONCAT
from repro.graph.builder import GraphBuilder
from repro.graph.liveness import LiveTensor, ROLE_FEATURE_MAP
from repro.layers import (
    Concat,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.memory.allocator import POLICY_NO_SHARING, StaticAllocator
from repro.memory.hybrid import CHOICE_SHARED_CONCAT, build_hybrid_plan
from repro.memory.shared_concat import find_concat_chains, member_to_terminal
from repro.models import build_model
from repro.tensor import TensorSpec
from repro.train.executor import GraphExecutor
from repro.train.stash import BaselinePolicy, HybridExecutionPolicy
from repro.verify import check_allocator_safety, check_shared_concat

DENSENET_KWARGS = dict(batch_size=4, num_classes=4, image_size=8,
                       init_channels=4, growth=4, blocks=2, block_layers=3)


@pytest.fixture(scope="module")
def densenet_graph():
    return build_model("densenet", **DENSENET_KWARGS)


@pytest.fixture(scope="module")
def arm_plan(densenet_graph):
    return build_hybrid_plan(
        densenet_graph, HybridPolicy(strategy=STRATEGY_SHARED_CONCAT)
    )


class TestChainDiscovery:
    def test_densenet_has_one_chain_per_block(self, densenet_graph):
        chains = find_concat_chains(densenet_graph)
        assert len(chains) == DENSENET_KWARGS["blocks"]
        for chain in chains:
            # block_layers concats per block: all but the terminal are
            # members (the terminal holds the shared buffer).
            assert len(chain.members) == DENSENET_KWARGS["block_layers"] - 1

    def test_chain_links_run_through_first_input(self, densenet_graph):
        for chain in find_concat_chains(densenet_graph):
            path = chain.path(chain.members[0])
            for prev, cur in zip(path, path[1:]):
                assert densenet_graph.node(cur).inputs[0] == prev

    def test_member_index_maps_every_member(self, densenet_graph):
        chains = find_concat_chains(densenet_graph)
        index = member_to_terminal(chains)
        assert set(index) == {m for c in chains for m in c.members}

    def test_plain_cnn_has_no_chains(self):
        assert find_concat_chains(build_model("tiny_cnn", batch_size=4)) == []

    def test_second_position_concat_forfeits_the_link(self):
        # y concatenated as inputs[1] — the prefix-copy property fails,
        # so the walk must not link through it.
        b = GraphBuilder("wrong_position", (2, 2, 4, 4))
        x = b.add(Conv2D(2, 1), b.input)
        c1 = b.add(Concat(), [x, b.add(Conv2D(2, 1), b.input)])
        c2 = b.add(Concat(), [b.add(Conv2D(2, 1), b.input), c1])
        z = b.add(GlobalAvgPool2D(), c2)
        z = b.add(Dense(2), z)
        b.mark_output(b.add(SoftmaxCrossEntropy(), z))
        graph = b.build()
        assert all(c1.node_id not in chain.members
                   for chain in find_concat_chains(graph))


class TestPlannerArm:
    def test_arm_emits_shared_concat_decisions(self, arm_plan):
        decisions = [d for d in arm_plan.decisions.values()
                     if d.choice == CHOICE_SHARED_CONCAT]
        assert decisions
        assert all(d.lossless and d.resident_bytes == 0 for d in decisions)

    def test_arm_shrinks_the_footprint(self, arm_plan):
        assert arm_plan.allocated_bytes < arm_plan.baseline_allocated_bytes

    def test_terminals_carry_no_decision(self, arm_plan):
        for d in arm_plan.decisions.values():
            if d.choice == CHOICE_SHARED_CONCAT:
                assert d.source_id not in arm_plan.decisions

    def test_oracle_passes_on_planner_output(self, arm_plan):
        assert check_shared_concat(arm_plan) == []

    def test_hybrid_dominates_the_pure_arm(self, densenet_graph):
        hybrid = build_hybrid_plan(densenet_graph)
        assert hybrid.pure_footprints["shared_concat"] >= \
            hybrid.allocated_bytes

    def test_allocator_aliases_the_chain(self, arm_plan):
        result = StaticAllocator().allocate(arm_plan.plan.tensors)
        aliased = [g for g in result.groups if g.aliased]
        assert aliased
        assert check_allocator_safety(result, arm_plan.plan.tensors) == []
        for group in aliased:
            assert group.size_bytes == max(t.size_bytes
                                           for t in group.members)


class TestExecutorBitIdentity:
    @pytest.mark.parametrize("strategy", ["shared_concat", "hybrid"])
    def test_densenet_trains_bit_identically(self, densenet_graph, strategy):
        plan = build_hybrid_plan(
            densenet_graph, HybridPolicy(strategy=strategy))
        assert plan.lossless
        rng = np.random.default_rng(0)
        shape = densenet_graph.node(densenet_graph.input_id).output_shape
        x = rng.normal(0, 1, shape).astype(np.float32)
        y = rng.integers(0, DENSENET_KWARGS["num_classes"],
                         shape[0]).astype(np.int64)

        base = GraphExecutor(densenet_graph, BaselinePolicy(), seed=0)
        planned = GraphExecutor(densenet_graph,
                                HybridExecutionPolicy(plan), seed=0)
        assert base.forward(x, y, train=True) == \
            planned.forward(x, y, train=True)
        base_grads, plan_grads = base.backward(), planned.backward()
        assert set(base_grads) == set(plan_grads)
        for name in base_grads:
            np.testing.assert_array_equal(base_grads[name], plan_grads[name])

    def test_members_are_not_stashed(self, densenet_graph, arm_plan):
        policy = HybridExecutionPolicy(arm_plan)
        executor = GraphExecutor(densenet_graph, policy, seed=0)
        rng = np.random.default_rng(0)
        shape = densenet_graph.node(densenet_graph.input_id).output_shape
        x = rng.normal(0, 1, shape).astype(np.float32)
        y = rng.integers(0, 4, shape[0]).astype(np.int64)
        executor.forward(x, y, train=True)
        members = {nid for nid, d in arm_plan.decisions.items()
                   if d.choice == CHOICE_SHARED_CONCAT}
        assert members
        assert not members & set(executor.stashed_node_ids())
        executor.backward()  # materialises via the terminal's prefix


def lt(name, elements, birth, death, shareable=True, alias_group=None):
    return LiveTensor(
        TensorSpec(name, (elements,)), birth, death, 0, ROLE_FEATURE_MAP,
        shareable, alias_group=alias_group,
    )


@st.composite
def aliased_tables(draw):
    """Random liveness tables mixing labelled and ordinary tensors."""
    tensors = []
    n_labels = draw(st.integers(1, 3))
    for li in range(n_labels):
        for mi in range(draw(st.integers(1, 4))):
            birth = draw(st.integers(0, 30))
            tensors.append(lt(
                f"a{li}_{mi}", draw(st.integers(1, 500)), birth,
                birth + draw(st.integers(0, 20)),
                alias_group=f"concat:{li}",
            ))
    for i in range(draw(st.integers(0, 6))):
        birth = draw(st.integers(0, 30))
        tensors.append(lt(f"p{i}", draw(st.integers(1, 500)), birth,
                          birth + draw(st.integers(0, 20))))
    return tensors


class TestAliasingProperties:
    @settings(max_examples=50, deadline=None)
    @given(aliased_tables())
    def test_aliased_groups_are_safe_and_tight(self, tensors):
        result = StaticAllocator(horizon=64).allocate(tensors)
        assert check_allocator_safety(result, tensors) == []
        by_label = {}
        for t in tensors:
            if t.alias_group:
                by_label.setdefault(t.alias_group, []).append(t)
        aliased_groups = [g for g in result.groups if g.aliased]
        # One region per label, sized by its largest member.
        assert len(aliased_groups) == len(by_label)
        for group in aliased_groups:
            label = group.members[0].alias_group
            assert sorted(t.spec.name for t in group.members) == \
                sorted(t.spec.name for t in by_label[label])
            assert group.size_bytes == max(t.size_bytes
                                           for t in group.members)

    @settings(max_examples=25, deadline=None)
    @given(aliased_tables())
    def test_no_sharing_ablation_ignores_labels(self, tensors):
        result = StaticAllocator(POLICY_NO_SHARING,
                                 horizon=64).allocate(tensors)
        assert not any(g.aliased for g in result.groups)
        assert result.total_bytes == sum(t.size_bytes for t in tensors)
