"""Tests for the deeper ImageNet ResNets and structural model properties."""

import pytest

from repro.core import GistConfig, build_gist_plan, classify_all_stashes
from repro.graph import TrainingSchedule
from repro.models import build_model, inception, resnet


class TestDeepImageNetResnets:
    def test_resnet101_parameters(self):
        n = resnet(101, batch_size=1).num_parameters()
        assert 44_000_000 < n < 45_000_000

    def test_resnet152_parameters(self):
        n = resnet(152, batch_size=1).num_parameters()
        assert 60_000_000 < n < 60_500_000

    def test_registry_names(self):
        for name in ("resnet101", "resnet152"):
            g = build_model(name, batch_size=1)
            assert g.node(g.output_id).kind == "loss"

    def test_deeper_means_more_stashes(self):
        shallow = build_model("resnet50", batch_size=2)
        deep = build_model("resnet101", batch_size=2)
        assert len(classify_all_stashes(deep)) > len(classify_all_stashes(shallow))


class TestStructuralProperties:
    def test_inception_module_has_four_branches(self):
        g = inception(batch_size=1)
        concat = g.node_by_name("inc3a_out")
        assert len(concat.inputs) == 4

    def test_every_suite_graph_single_loss(self):
        from repro.models import PAPER_SUITE

        for name in PAPER_SUITE:
            g = build_model(name, batch_size=1)
            losses = [n for n in g.nodes if n.kind == "loss"]
            assert len(losses) == 1

    def test_gist_plan_covers_deep_resnet(self):
        g = build_model("resnet101", batch_size=2)
        plan = build_gist_plan(g, GistConfig.full("fp10"))
        # Every stashed map got a decision or was deliberately skipped.
        stashes = classify_all_stashes(g)
        assert len(plan.decisions) >= 0.9 * len(stashes)

    def test_schedule_scales_linearly(self):
        g50 = build_model("resnet50", batch_size=1)
        g101 = build_model("resnet101", batch_size=1)
        s50 = TrainingSchedule(g50)
        s101 = TrainingSchedule(g101)
        assert s101.num_steps > s50.num_steps
        assert s101.num_steps == 2 * len(g101) - 1
