"""Tests for the model zoo: published shapes, parameter counts, structure."""

import pytest

from repro.graph import TrainingSchedule
from repro.models import (
    PAPER_SUITE,
    alexnet,
    available_models,
    build_model,
    inception,
    nin,
    overfeat,
    resnet,
    resnet_cifar,
    scaled_alexnet,
    scaled_vgg,
    tiny_cnn,
    vgg16,
)


class TestRegistry:
    def test_paper_suite_registered(self):
        for name in PAPER_SUITE:
            assert name in available_models()

    def test_build_by_name(self):
        g = build_model("alexnet", batch_size=2)
        assert g.name == "alexnet"
        assert g.node(g.input_id).output_shape[0] == 2

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("lenet-9000")


class TestPublishedParameterCounts:
    """Cross-checks against the literature (exactness pins the archs)."""

    def test_alexnet_62m(self):
        assert alexnet(batch_size=1).num_parameters() == 62_378_344

    def test_vgg16_138m(self):
        assert vgg16(batch_size=1).num_parameters() == 138_357_544

    def test_resnet50_25m(self):
        n = resnet(50, batch_size=1).num_parameters()
        assert 25_500_000 < n < 25_600_000

    def test_inception_7m(self):
        n = inception(batch_size=1).num_parameters()
        assert 6_500_000 < n < 7_500_000

    def test_nin_under_8m(self):
        assert nin(batch_size=1).num_parameters() < 8_000_000

    def test_overfeat_140m_plus(self):
        assert overfeat(batch_size=1).num_parameters() > 140_000_000


class TestShapes:
    def test_alexnet_conv1(self):
        g = alexnet(batch_size=4)
        assert g.node_by_name("conv1").output_shape == (4, 96, 55, 55)

    def test_vgg16_stage_shapes(self):
        g = vgg16(batch_size=2)
        assert g.node_by_name("relu1_2").output_shape == (2, 64, 224, 224)
        assert g.node_by_name("pool5").output_shape == (2, 512, 7, 7)

    def test_inception_concat_channels(self):
        g = inception(batch_size=2)
        assert g.node_by_name("inc3a_out").output_shape[1] == 256
        assert g.node_by_name("inc5b_out").output_shape[1] == 1024

    def test_resnet50_final_spatial(self):
        g = resnet(50, batch_size=2)
        assert g.node_by_name("res5c_relu").output_shape == (2, 2048, 7, 7)

    def test_loss_is_output_everywhere(self):
        for name in PAPER_SUITE:
            g = build_model(name, batch_size=1)
            assert g.node(g.output_id).kind == "loss"

    def test_schedules_build(self):
        for name in PAPER_SUITE:
            g = build_model(name, batch_size=1)
            s = TrainingSchedule(g)
            assert s.num_steps == 2 * len(g) - 1


class TestResnetCifar:
    def test_depth_6n_plus_2_exact(self):
        g = resnet_cifar(110, batch_size=2)
        convs = sum(1 for n in g.nodes if n.kind == "conv" and "proj" not in n.name)
        assert convs == 109  # 108 block convs + conv1 (fc is the 110th layer)

    def test_composable_depths(self):
        for depth in (509, 851, 1202):
            g = resnet_cifar(depth, batch_size=1)
            assert len(g) > depth  # conv+bn+relu per layer

    def test_rejects_tiny_depth(self):
        with pytest.raises(ValueError):
            resnet_cifar(4)

    def test_imagenet_rejects_odd_depth(self):
        with pytest.raises(ValueError):
            resnet(77)


class TestScaledModels:
    def test_tiny_cnn_structure(self):
        g = tiny_cnn()
        kinds = [n.kind for n in g.nodes]
        assert "maxpool" in kinds and "loss" in kinds

    def test_scaled_vgg_has_both_stash_classes(self):
        from repro.core import classify_all_stashes, STASH_RELU_CONV, STASH_RELU_POOL

        g = scaled_vgg(batch_size=4)
        classes = {i.stash_class for i in classify_all_stashes(g).values()}
        assert STASH_RELU_POOL in classes
        assert STASH_RELU_CONV in classes

    def test_scaled_alexnet_builds(self):
        g = scaled_alexnet(batch_size=4)
        assert g.node(g.output_id).kind == "loss"


class TestVGG19:
    def test_parameters_exact(self):
        from repro.models import vgg19

        assert vgg19(batch_size=1).num_parameters() == 143_667_240

    def test_registered(self):
        g = build_model("vgg19", batch_size=2)
        assert g.node_by_name("conv3_4").output_shape == (2, 256, 56, 56)

    def test_more_stashes_than_vgg16(self):
        from repro.core import classify_all_stashes

        v16 = build_model("vgg16", batch_size=2)
        v19 = build_model("vgg19", batch_size=2)
        assert len(classify_all_stashes(v19)) > len(classify_all_stashes(v16))
