"""Standalone driver for the SIGKILL/resume test.

Run as ``python _resume_driver.py JOURNAL EFFECTS COUNT SLEEP_S``: executes
COUNT slow work units through the orchestration pool with a run journal,
appending each completed unit's key to the EFFECTS file.  The test kills
this process mid-run, re-invokes it with identical arguments, and checks
that already-journaled units were not re-executed.
"""

import sys
import time

from repro.orchestrate import WorkUnit, register_kind, run_units


def _slow_unit(payload):
    time.sleep(float(payload["sleep_s"]))
    with open(payload["effects"], "a") as fh:
        fh.write(payload["key"] + "\n")
    return payload["key"]


def main(journal: str, effects: str, count: str, sleep_s: str) -> int:
    register_kind("resume-test", _slow_unit)
    units = [
        WorkUnit("resume-test", f"k{i:02d}",
                 {"key": f"k{i:02d}", "effects": effects,
                  "sleep_s": float(sleep_s)})
        for i in range(int(count))
    ]
    results = run_units(units, workers=1, journal=journal)
    assert len(results) == len(units)
    assert all(result.ok for result in results.values())
    print("DONE")
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
