"""RunJournal.compact(): bounded growth, replay semantics preserved."""

import json

from repro.ioutil import read_jsonl
from repro.orchestrate import RunJournal, WorkUnit


def _unit(key, payload):
    return WorkUnit("sleep", key, payload)


def _fill(journal):
    """A journal with superseded, failed and multi-fingerprint records.

    Returns the units whose ``completed()`` view must be preserved:
    one key recorded twice under the same fingerprint (later wins), one
    key recorded under two different fingerprints (both callers must
    still replay), and one failed record.
    """
    a_old, a_new = _unit("a", {"v": 1}), _unit("a", {"v": 1})
    b_v1, b_v2 = _unit("b", {"v": 1}), _unit("b", {"v": 2})
    c = _unit("c", {"v": 1})
    journal.record(a_old, "ok", result="stale")
    journal.record(b_v1, "ok", result="b-as-v1")
    journal.record(a_new, "ok", result="fresh")
    journal.record(b_v2, "ok", result="b-as-v2")
    journal.record(c, "failed", error={"type": "Boom", "message": "x"})
    return [a_new, b_v1, b_v2, c]


class TestCompact:
    def test_drops_superseded_keeps_latest(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        _fill(journal)
        kept, dropped = journal.compact()
        # (a, fp) superseded pair collapses; both b fingerprints stay.
        assert kept == 4
        assert dropped == 1
        records = list(read_jsonl(journal.path))
        assert len(records) == 4
        (a_record,) = [r for r in records if r["key"] == "a"]
        assert a_record["result"] == "fresh"

    def test_completed_byte_identical_across_compaction(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        units = _fill(journal)
        def snapshot():
            views = {}
            for retry_failed in (True, False):
                for unit in units:
                    label = (f"{unit.key}/{retry_failed}/"
                             f"{json.dumps(unit.payload, sort_keys=True)}")
                    views[label] = journal.completed(
                        [unit], retry_failed=retry_failed)
            return json.dumps(views, sort_keys=True)

        before = snapshot()
        journal.compact()
        after = snapshot()
        assert before == after  # byte-for-byte, incl. the failed record

    def test_multi_fingerprint_key_preserved(self, tmp_path):
        # The regression compaction-by-key-alone would introduce: two
        # callers with different payloads for the same key must BOTH
        # still replay after compaction.
        journal = RunJournal(tmp_path / "run.jsonl")
        v1, v2 = _unit("k", {"n": 1}), _unit("k", {"n": 2})
        journal.record(v1, "ok", result="one")
        journal.record(v2, "ok", result="two")
        journal.compact()
        assert journal.completed([v1])["k"]["result"] == "one"
        assert journal.completed([v2])["k"]["result"] == "two"

    def test_malformed_and_foreign_lines_dropped(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record(_unit("a", {"v": 1}), "ok", result=1)
        with open(journal.path, "a") as fh:
            fh.write(json.dumps({"format": 999, "key": "x"}) + "\n")
            fh.write(json.dumps({"format": 1, "key": "y",
                                 "status": "running"}) + "\n")
            fh.write(json.dumps({"format": 1, "key": 7,
                                 "status": "ok"}) + "\n")
        kept, dropped = journal.compact()
        assert (kept, dropped) == (1, 3)

    def test_missing_journal_is_noop(self, tmp_path):
        journal = RunJournal(tmp_path / "absent.jsonl")
        assert journal.compact() == (0, 0)
        assert not journal.path.exists()

    def test_idempotent(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        _fill(journal)
        journal.compact()
        first = journal.path.read_bytes()
        kept, dropped = journal.compact()
        assert dropped == 0
        assert journal.path.read_bytes() == first
