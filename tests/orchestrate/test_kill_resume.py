"""Durability: SIGKILL a journaled run mid-flight, resume, verify.

This is the acceptance gate for the run journal: an interrupted sweep
re-invoked with the same arguments must resume from the journal and
re-run only work units that had not reached a terminal journal record.
The at-least-once contract allows the single in-flight unit at kill time
to execute twice; everything journaled before the kill must not.
"""

import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

from repro.ioutil import read_jsonl

_DRIVER = Path(__file__).with_name("_resume_driver.py")
_NUM_UNITS = 8
_SLEEP_S = "0.25"


def _spawn(journal, effects):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(_DRIVER), str(journal), str(effects),
         str(_NUM_UNITS), _SLEEP_S],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


def test_sigkill_mid_run_then_resume_reruns_only_incomplete(tmp_path):
    journal = tmp_path / "run.jsonl"
    effects = tmp_path / "effects.log"

    # First invocation: wait until at least two units are journaled,
    # then SIGKILL the process (no cleanup handlers run).
    proc = _spawn(journal, effects)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            done = list(read_jsonl(journal))
            if len(done) >= 2:
                break
            if proc.poll() is not None:
                raise AssertionError(
                    f"driver exited early:\n{proc.stdout.read().decode()}")
            time.sleep(0.02)
        else:
            raise AssertionError("driver never journaled two units")
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(timeout=30)

    journaled_before_kill = [record["key"] for record in read_jsonl(journal)]
    assert len(journaled_before_kill) >= 2
    assert len(journaled_before_kill) < _NUM_UNITS, "kill came too late"

    # Second invocation with identical arguments: must complete, and must
    # not re-run anything that already had a journal record.
    resumed = _spawn(journal, effects)
    out, _ = resumed.communicate(timeout=120)
    assert resumed.returncode == 0, out.decode()
    assert b"DONE" in out

    final_keys = {record["key"] for record in read_jsonl(journal)}
    assert final_keys == {f"k{i:02d}" for i in range(_NUM_UNITS)}

    runs = Counter(effects.read_text().splitlines())
    for key in journaled_before_kill:
        assert runs[key] == 1, (
            f"unit {key} was journaled before the kill but ran "
            f"{runs[key]} times")
    # Every unit ran at least once overall (the in-flight-at-kill unit
    # may legitimately appear twice).
    assert set(runs) == final_keys
