"""payload_fingerprint canonicalisation: numpy payloads, round trips.

Regression tests for the durability bug where a work unit whose payload
carried numpy scalars (e.g. an ``np.int64`` seed from a sweep config)
raised ``TypeError`` at fingerprint time, and where a payload
fingerprinted *differently* before and after the JSON round trip the
pool applies — so a journaled unit could fail to replay on resume.
"""

import json

import numpy as np
import pytest

from repro.orchestrate import WorkUnit
from repro.orchestrate.units import canonical_json, normalise_json, payload_fingerprint


def _fingerprint(payload):
    return payload_fingerprint(WorkUnit("sleep", "k", payload))


class TestNumpyPayloads:
    def test_numpy_scalar_fingerprints(self):
        # Pre-fix: json.dumps raised "Object of type int64 is not JSON
        # serializable".
        assert _fingerprint({"seed": np.int64(3)}) == _fingerprint({"seed": 3})

    def test_numpy_float_scalar(self):
        assert _fingerprint({"x": np.float64(0.5)}) == _fingerprint({"x": 0.5})

    def test_numpy_array_fingerprints(self):
        assert (_fingerprint({"shape": np.array([2, 3])})
                == _fingerprint({"shape": [2, 3]}))

    def test_zero_dim_array(self):
        assert _fingerprint({"n": np.array(7)}) == _fingerprint({"n": 7})


class TestRoundTripConsistency:
    def test_fingerprint_stable_across_json_round_trip(self):
        # The pool normalises results (and journal records) through a
        # JSON round trip; the fingerprint must not move across it.
        payload = {"tuple": (1, 2), "np": np.int32(5),
                   "nested": {"a": [np.float32(0.25)]}}
        round_tripped = json.loads(json.dumps(normalise_json(payload)))
        assert _fingerprint(payload) == _fingerprint(round_tripped)

    def test_key_order_irrelevant(self):
        assert _fingerprint({"a": 1, "b": 2}) == _fingerprint({"b": 2, "a": 1})

    def test_plain_payload_fingerprint_unchanged(self):
        # Backwards compatibility: the fix must not invalidate journals
        # written before it — plain JSON payloads keep their bytes.
        unit = WorkUnit("sleep", "k", {"seconds": 0.1, "label": "x"})
        blob = json.dumps([unit.kind, unit.payload], sort_keys=True)
        import hashlib

        assert payload_fingerprint(unit) == hashlib.sha256(
            blob.encode("utf-8")).hexdigest()[:16]

    def test_non_serialisable_still_rejected(self):
        with pytest.raises(TypeError):
            _fingerprint({"bad": object()})


class TestCanonicalJson:
    def test_canonical_equals_round_trip(self):
        value = {"b": (1, 2), "a": np.int64(9)}
        once = canonical_json(value)
        assert canonical_json(json.loads(once)) == once

    def test_normalise_converts_in_place_types(self):
        out = normalise_json({"t": (1, 2), "np": np.array([1.5])})
        assert out == {"t": [1, 2], "np": [1.5]}
