"""Fault-injection and determinism tests for the work-unit pool.

Every failure mode the orchestration layer promises to absorb is
injected here for real: worker exceptions, hard process crashes
(``os._exit``), hangs past the timeout, and flaky units that succeed on
retry.  The determinism contract — same results for any worker count —
is asserted on JSON bytes.
"""

import json
import os
import time

import pytest

from repro.ioutil import read_jsonl
from repro.orchestrate import (
    RunJournal,
    WorkUnit,
    payload_fingerprint,
    register_kind,
    run_units,
)


def _square(payload):
    return {"sq": payload["x"] ** 2}


def _boom(payload):
    raise ValueError(f"injected failure for {payload['x']}")


def _hard_crash(payload):
    os._exit(9)


def _hang(payload):
    time.sleep(payload.get("sleep_s", 60.0))


def _tuple_result(payload):
    return ("a", 1)


def _flaky(payload):
    """Fails on the first attempt, succeeds once the marker exists."""
    if not os.path.exists(payload["marker"]):
        with open(payload["marker"], "w"):
            pass
        raise RuntimeError("injected transient failure")
    return "ok-after-retry"


def _effect(payload):
    with open(payload["effects"], "a") as fh:
        fh.write(payload["key"] + "\n")
    return payload["key"]


for _name, _fn in [("t-square", _square), ("t-boom", _boom),
                   ("t-crash", _hard_crash), ("t-hang", _hang),
                   ("t-tuple", _tuple_result), ("t-flaky", _flaky),
                   ("t-effect", _effect)]:
    register_kind(_name, _fn)


def _squares(n):
    return [WorkUnit("t-square", f"u{i}", {"x": i}) for i in range(n)]


def _values(results):
    return {key: result.value for key, result in results.items()}


class TestDeterminism:
    def test_serial_and_parallel_results_byte_identical(self):
        units = _squares(10)
        serial = run_units(units, workers=1)
        parallel = run_units(units, workers=4)
        assert (json.dumps(_values(serial), sort_keys=True)
                == json.dumps(_values(parallel), sort_keys=True))
        assert all(r.ok and not r.cached for r in parallel.values())

    def test_results_json_normalised_in_every_mode(self):
        # A tuple result must come back as a JSON list everywhere, so a
        # live parallel run, a serial run and a journal replay agree.
        unit = [WorkUnit("t-tuple", "t", {})]
        assert run_units(unit, workers=1)["t"].value == ["a", 1]
        assert run_units(unit, workers=2)["t"].value == ["a", 1]


class TestFaultIsolation:
    def test_exception_recorded_with_payload_not_fatal(self):
        units = _squares(3) + [WorkUnit("t-boom", "bad", {"x": 13})]
        results = run_units(units, workers=2, retries=1)
        bad = results["bad"]
        assert bad.status == "failed" and not bad.ok
        assert bad.error["type"] == "ValueError"
        assert "13" in bad.error["message"]
        assert bad.attempts == 2  # first try + one retry
        assert all(results[f"u{i}"].ok for i in range(3))

    def test_worker_crash_is_isolated_and_retried(self):
        units = [WorkUnit("t-crash", "boom", {})] + _squares(4)
        results = run_units(units, workers=2, retries=1)
        assert results["boom"].status == "failed"
        assert results["boom"].error["type"] == "WorkerCrash"
        assert results["boom"].attempts == 2
        assert all(results[f"u{i}"].ok for i in range(4))

    def test_hang_hits_timeout_and_batch_completes(self):
        units = [WorkUnit("t-hang", "stuck", {})] + _squares(3)
        start = time.monotonic()
        results = run_units(units, workers=2, timeout_s=0.5, retries=0)
        assert time.monotonic() - start < 30.0
        assert results["stuck"].status == "failed"
        assert results["stuck"].error["type"] == "WorkerTimeout"
        assert all(results[f"u{i}"].ok for i in range(3))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_then_succeed(self, tmp_path, workers):
        marker = tmp_path / f"marker-{workers}"
        units = [WorkUnit("t-flaky", "f", {"marker": str(marker)})]
        results = run_units(units, workers=workers, retries=1)
        assert results["f"].ok
        assert results["f"].attempts == 2
        assert results["f"].value == "ok-after-retry"


class TestSchedulingContract:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_units([WorkUnit("t-square", "u", {"x": 1}),
                       WorkUnit("t-square", "u", {"x": 2})])

    def test_non_json_payload_rejected(self):
        with pytest.raises(ValueError, match="JSON"):
            run_units([WorkUnit("t-square", "u", {"x": object()})])

    def test_stop_when_halts_scheduling(self):
        units = _squares(10)
        results = run_units(units, workers=1,
                            stop_when=lambda r: r.value["sq"] >= 9)
        assert sorted(results) == ["u0", "u1", "u2", "u3"]


class TestJournalResume:
    def test_completed_units_replayed_not_rerun(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        effects = tmp_path / "effects.log"
        units = [WorkUnit("t-effect", f"k{i}",
                          {"key": f"k{i}", "effects": str(effects)})
                 for i in range(6)]
        first = run_units(units[:4], workers=1, journal=str(journal))
        assert all(r.ok for r in first.values())
        resumed = run_units(units, workers=2, journal=str(journal))
        assert sorted(k for k, r in resumed.items() if r.cached) \
            == ["k0", "k1", "k2", "k3"]
        counts = effects.read_text().splitlines()
        assert sorted(counts) == [f"k{i}" for i in range(6)]  # once each
        assert (json.dumps(_values(resumed), sort_keys=True)
                == json.dumps({f"k{i}": f"k{i}" for i in range(6)},
                              sort_keys=True))

    def test_changed_payload_invalidates_journal_entry(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_units([WorkUnit("t-square", "u", {"x": 2})], journal=str(journal))
        changed = run_units([WorkUnit("t-square", "u", {"x": 5})],
                            journal=str(journal))
        assert not changed["u"].cached
        assert changed["u"].value == {"sq": 25}

    def test_failed_units_are_retried_on_resume(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        marker = tmp_path / "marker"
        units = [WorkUnit("t-flaky", "f", {"marker": str(marker)})]
        first = run_units(units, retries=0, journal=str(journal))
        assert first["f"].status == "failed"
        second = run_units(units, retries=0, journal=str(journal))
        assert second["f"].ok and not second["f"].cached

    def test_truncated_journal_tail_is_tolerated(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        run_units(_squares(3), journal=str(journal))
        with open(journal, "a") as fh:
            fh.write('{"format": 1, "key": "u9", "stat')  # crash mid-append
        resumed = run_units(_squares(3), journal=str(journal))
        assert all(r.cached for r in resumed.values())

    def test_fingerprint_covers_kind_and_payload(self):
        a = WorkUnit("t-square", "k", {"x": 1})
        b = WorkUnit("t-square", "k", {"x": 2})
        c = WorkUnit("t-boom", "k", {"x": 1})
        assert payload_fingerprint(a) != payload_fingerprint(b)
        assert payload_fingerprint(a) != payload_fingerprint(c)
        assert payload_fingerprint(a) == payload_fingerprint(
            WorkUnit("t-square", "other-key", {"x": 1}))

    def test_journal_records_failures_with_payload(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        run_units([WorkUnit("t-boom", "bad", {"x": 3})], retries=0,
                  journal=journal)
        (record,) = list(read_jsonl(journal.path))
        assert record["status"] == "failed"
        assert record["error"]["type"] == "ValueError"
        assert record["kind"] == "t-boom"
