"""Sweep work units: enumeration contract, journal round-trips, CLI."""

import json

import pytest

from repro.cli import main
from repro.experiments import (
    DEFAULT_SWEEP_DRIVERS,
    FIGURE12_ARMS,
    SWEEP_DRIVERS,
    figure8_mfr,
    run_sweep,
    run_sweep_unit,
)
from repro.ioutil import read_jsonl
from repro.models import PAPER_SUITE

#: Small models that keep the static drivers fast in tests.
SMALL = ["tiny_cnn", "scaled_vgg"]


class TestEnumerationContract:
    @pytest.mark.parametrize("name", sorted(SWEEP_DRIVERS))
    def test_units_are_payload_complete(self, name):
        units = SWEEP_DRIVERS[name].enumerate_units(SMALL, 8)
        assert units, f"driver {name} enumerated no units"
        keys = [unit.key for unit in units]
        assert len(keys) == len(set(keys))
        for unit in units:
            assert unit.kind == "experiment"
            json.dumps(unit.payload)  # payload must be self-contained JSON
            assert unit.payload["driver"] == name

    def test_default_drivers_cover_paper_suite(self):
        for name in DEFAULT_SWEEP_DRIVERS:
            units = SWEEP_DRIVERS[name].enumerate_units(None, 64)
            assert len(units) == len(PAPER_SUITE)

    def test_unknown_driver_rejected(self):
        with pytest.raises(KeyError, match="unknown sweep drivers"):
            run_sweep(["not_a_driver"])
        with pytest.raises(KeyError, match="unknown sweep driver"):
            run_sweep_unit({"driver": "not_a_driver"})


class TestJournalRoundTrip:
    def test_sweep_results_replay_byte_identical(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        drivers = ["figure8_mfr", "figure3_stash_classes"]
        live = run_sweep(drivers, models=SMALL, batch_size=8,
                         journal=str(journal))
        assert live["ok"]
        lines_after_live = len(list(read_jsonl(journal)))
        replayed = run_sweep(drivers, models=SMALL, batch_size=8,
                             journal=str(journal))
        assert (json.dumps(live, sort_keys=True)
                == json.dumps(replayed, sort_keys=True))
        # Nothing re-ran: the journal gained no records on replay.
        assert len(list(read_jsonl(journal))) == lines_after_live

    @pytest.mark.parametrize("name", sorted(DEFAULT_SWEEP_DRIVERS))
    def test_each_default_driver_unit_round_trips(self, name, tmp_path):
        journal = tmp_path / "unit.jsonl"
        out = run_sweep([name], models=["tiny_cnn"], batch_size=8,
                        journal=str(journal))
        assert out["ok"], out["failed_units"]
        again = run_sweep([name], models=["tiny_cnn"], batch_size=8,
                          journal=str(journal))
        assert (json.dumps(out["figures"], sort_keys=True)
                == json.dumps(again["figures"], sort_keys=True))


class TestSweepSemantics:
    def test_sweep_matches_direct_driver(self):
        swept = run_sweep(["figure8_mfr"], models=SMALL, batch_size=8)
        direct = figure8_mfr(SMALL, batch_size=8)
        assert (json.dumps(swept["figures"]["figure8_mfr"], sort_keys=True)
                == json.dumps(direct, sort_keys=True))

    def test_workers_do_not_change_bytes(self):
        kwargs = dict(models=SMALL, batch_size=8)
        serial = run_sweep(["figure3_stash_classes"], workers=1, **kwargs)
        parallel = run_sweep(["figure3_stash_classes"], workers=3, **kwargs)
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(parallel, sort_keys=True))

    def test_training_arm_unit_runs_from_payload_alone(self):
        curve = run_sweep_unit({"driver": "figure12_accuracy",
                                "arm": FIGURE12_ARMS[0],
                                "epochs": 1, "seed": 3})
        assert isinstance(curve, list) and len(curve) == 1


class TestSweepCli:
    def test_cli_writes_output_and_resumes(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        journal = tmp_path / "sweep.jsonl"
        argv = ["sweep", "--drivers", "figure8_mfr", "--models", "tiny_cnn",
                "--batch-size", "8", "--out", str(out_path),
                "--journal", str(journal), "--workers", "2"]
        assert main(argv) == 0
        data = json.loads(out_path.read_text())
        assert data["ok"] and data["figures"]["figure8_mfr"]
        lines = len(list(read_jsonl(journal)))
        assert main(argv) == 0  # resume: replay, rewrite, same bytes
        assert len(list(read_jsonl(journal))) == lines
        assert json.loads(out_path.read_text()) == data
        assert "figure8_mfr" in capsys.readouterr().out
