"""Regression: byte counts entering the cost model must be sane.

``CostModel.transfer_time`` and ``copy_time`` used to accept any float,
so a NaN or negative byte count (e.g. a buggy size model upstream)
propagated silently into plan costs, ranked options nonsensically and
produced NaN step times.  They now fail fast with ``ValueError``.
"""

import math

import pytest

from repro.perf.cost import CostModel


@pytest.fixture
def cost():
    return CostModel()


@pytest.mark.parametrize("bad", [-1, -0.5, float("nan"), float("inf"),
                                 float("-inf"), None, "4096"])
def test_transfer_time_rejects_bad_byte_counts(cost, bad):
    with pytest.raises(ValueError, match="transfer_time"):
        cost.transfer_time(bad)


@pytest.mark.parametrize("bad", [-1, float("nan"), float("inf"), None])
def test_copy_time_rejects_bad_byte_counts(cost, bad):
    with pytest.raises(ValueError, match="copy_time"):
        cost.copy_time(bad)


def test_valid_byte_counts_still_priced(cost):
    assert cost.transfer_time(0) == 0.0
    assert cost.copy_time(0) == 0.0
    assert math.isfinite(cost.transfer_time(1 << 20))
    assert cost.transfer_time(2 << 20) > cost.transfer_time(1 << 20)
    assert cost.copy_time(2 << 20) > cost.copy_time(1 << 20)


def test_hybrid_planner_surfaces_nan_sizes_instead_of_nan_plans(monkeypatch):
    # Pre-fix, a NaN CSR size estimate flowed through copy_time into the
    # option costs and the planner quietly emitted a NaN-costed plan.
    from repro.memory import hybrid
    from repro.models import build_model

    monkeypatch.setattr(hybrid, "csr_bytes",
                        lambda *args, **kwargs: float("nan"))
    graph = build_model("tiny_cnn", batch_size=4, num_classes=4,
                        image_size=8, channels=8)
    with pytest.raises(ValueError, match="copy_time"):
        hybrid.build_hybrid_plan(graph)
