"""Tests for the analytical performance substrate."""

import pytest

from repro.core import GistConfig
from repro.models import alexnet, resnet_cifar, scaled_vgg, vgg16
from repro.perf import (
    CostModel,
    DeviceSpec,
    TITAN_X_MAXWELL,
    encoding_time_delta,
    larger_minibatch_speedup,
    max_minibatch,
    measure_overhead,
    scale_step,
    simulate_swapping,
    throughput_images_per_s,
    training_footprint_bytes,
)


class TestDevice:
    def test_titan_x_specs(self):
        dev = TITAN_X_MAXWELL
        assert dev.memory_bytes == 12 * 1024**3
        assert 6e12 < dev.peak_flops < 7e12
        assert 300e9 < dev.mem_bandwidth < 400e9

    def test_occupancy_saturates(self):
        dev = TITAN_X_MAXWELL
        assert dev.occupancy(1) < dev.occupancy(8) < dev.occupancy(64) < 1.0

    def test_occupancy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TITAN_X_MAXWELL.occupancy(0)


class TestCostModel:
    def test_step_time_positive_and_decomposes(self):
        g = scaled_vgg(batch_size=8)
        step = CostModel().step_time(g)
        assert step.forward_s > 0
        assert step.backward_s > step.forward_s  # backward does more work
        assert step.total_s == pytest.approx(step.forward_s + step.backward_s)

    def test_bigger_batch_costs_more_per_step(self):
        small = CostModel().step_time(scaled_vgg(batch_size=8)).total_s
        large = CostModel().step_time(scaled_vgg(batch_size=32)).total_s
        assert large > small

    def test_bigger_batch_has_higher_throughput(self):
        thr8 = throughput_images_per_s(scaled_vgg(batch_size=8))
        thr64 = throughput_images_per_s(scaled_vgg(batch_size=64))
        assert thr64 > thr8

    def test_vgg16_step_time_plausible(self):
        # Titan X trains VGG16 @ 64 at roughly 1-3 s per minibatch.
        step = CostModel().step_time(vgg16(batch_size=64))
        assert 0.5 < step.total_s < 5.0

    def test_input_is_free(self):
        g = scaled_vgg(batch_size=8)
        cm = CostModel()
        assert cm.forward_time(g, g.node(g.input_id)) == 0.0

    def test_scale_step_folds_measured_backend_speedup(self):
        step = CostModel().step_time(scaled_vgg(batch_size=8))
        faster = scale_step(step, 2.0)
        assert faster.total_s == pytest.approx(step.total_s / 2.0)
        assert faster.per_node_forward.keys() == step.per_node_forward.keys()
        for node_id, t in step.per_node_backward.items():
            assert faster.per_node_backward[node_id] == pytest.approx(t / 2.0)
        with pytest.raises(ValueError, match="positive"):
            scale_step(step, 0.0)


class TestGistOverhead:
    def test_average_overhead_band(self):
        """Paper: ~3% lossless, ~4% with lossy, max 7%."""
        overheads = []
        for name in ("alexnet", "vgg16"):
            from repro.models import build_model

            g = build_model(name, batch_size=64)
            r = measure_overhead(g, GistConfig.for_network(name))
            overheads.append(r.overhead_frac)
            assert -0.02 < r.overhead_frac < 0.10
        assert sum(overheads) / len(overheads) < 0.07

    def test_binarize_is_roughly_neutral_or_speedup(self):
        g = alexnet(batch_size=64)
        r = measure_overhead(g, GistConfig.binarize_only())
        assert r.overhead_frac < 0.01  # paper observes small improvements

    def test_dpr_overhead_minimal(self):
        g = vgg16(batch_size=64)
        r = measure_overhead(g, GistConfig.dpr_only("fp16"))
        assert r.overhead_frac < 0.03  # paper: ~1%

    def test_per_technique_breakdown_keys(self):
        from repro.core.schedule_builder import build_gist_plan

        g = alexnet(batch_size=64)
        deltas = encoding_time_delta(build_gist_plan(g, GistConfig()),
                                     CostModel())
        assert set(deltas) == {"binarize", "ssdc", "dpr"}


class TestSwapping:
    def test_ordering_naive_vdnn_gist(self):
        """Figure 15's headline: naive >> vDNN >> Gist overhead."""
        g = vgg16(batch_size=64)
        swap = simulate_swapping(g)
        gist = measure_overhead(g, GistConfig.for_network("vgg16"))
        assert swap.naive_overhead > swap.vdnn_overhead >= 0.0
        assert swap.naive_overhead > gist.overhead_frac

    def test_naive_adds_full_transfer(self):
        g = alexnet(batch_size=64)
        swap = simulate_swapping(g)
        assert swap.naive_s > swap.baseline_s
        assert swap.vdnn_s <= swap.naive_s
        assert swap.vdnn_s >= swap.baseline_s


class TestUtilization:
    def test_max_minibatch_monotone_in_memory(self):
        factory = lambda b: scaled_vgg(batch_size=b)
        small_dev = DeviceSpec("small", 6e12, 300e9, 256 * 1024**2, 10e9)
        big_dev = DeviceSpec("big", 6e12, 300e9, 1024**3, 10e9)
        assert max_minibatch(factory, device=small_dev) <= max_minibatch(
            factory, device=big_dev
        )

    def test_gist_fits_larger_minibatch(self):
        factory = lambda b: scaled_vgg(batch_size=b)
        dev = DeviceSpec("tiny", 6e12, 300e9, 64 * 1024**2, 10e9)
        base = max_minibatch(factory, None, device=dev)
        gist = max_minibatch(factory, GistConfig.full("fp8"), device=dev)
        assert gist > base

    def test_footprint_includes_weights(self):
        g = scaled_vgg(batch_size=8)
        fp = training_footprint_bytes(g)
        from repro.memory import build_memory_plan, static_footprint

        activations_only = static_footprint(build_memory_plan(g).tensors)
        assert fp > activations_only

    def test_speedup_report(self):
        factory = lambda b: resnet_cifar(56, batch_size=b)
        dev = DeviceSpec("tiny", 6e12, 300e9, 96 * 1024**2, 10e9)
        report = larger_minibatch_speedup(
            factory, GistConfig.full("fp8"), device=dev, name="resnet56"
        )
        assert report.gist_batch > report.baseline_batch
        assert report.speedup > 1.0

    def test_zero_when_nothing_fits(self):
        factory = lambda b: scaled_vgg(batch_size=b)
        dev = DeviceSpec("nano", 6e12, 300e9, 1024, 10e9)
        assert max_minibatch(factory, device=dev) == 0


class TestCDMA:
    def test_cdma_between_vdnn_and_baseline(self):
        from repro.models import build_model
        from repro.perf import simulate_cdma, simulate_swapping

        g = build_model("resnet50", batch_size=64)
        vdnn = simulate_swapping(g)
        cdma = simulate_cdma(g, compression_ratio=2.5)
        assert cdma.vdnn_s <= vdnn.vdnn_s
        assert cdma.vdnn_s >= vdnn.baseline_s

    def test_ratio_one_equals_vdnn(self):
        from repro.models import scaled_vgg
        from repro.perf import simulate_cdma, simulate_swapping

        g = scaled_vgg(batch_size=32)
        assert (simulate_cdma(g, compression_ratio=1.0).vdnn_s
                == simulate_swapping(g).vdnn_s)

    def test_rejects_bad_ratio(self):
        import pytest as _pytest

        from repro.models import scaled_vgg
        from repro.perf import simulate_cdma

        with _pytest.raises(ValueError):
            simulate_cdma(scaled_vgg(batch_size=8), compression_ratio=0.5)


class TestDeepestTrainable:
    def test_gist_goes_deeper(self):
        from repro.perf import deepest_trainable

        dev = DeviceSpec("small", 6e12, 300e9, 192 * 1024**2, 10e9)
        factory = lambda depth: resnet_cifar(depth, batch_size=32)
        base = deepest_trainable(factory, None, device=dev, start=8,
                                 stride=12, upper=200)
        gist = deepest_trainable(factory, GistConfig.full("fp8"),
                                 device=dev, start=8, stride=12, upper=200)
        assert gist > base > 0

    def test_zero_when_start_does_not_fit(self):
        from repro.perf import deepest_trainable

        dev = DeviceSpec("nano", 6e12, 300e9, 1024, 10e9)
        factory = lambda depth: resnet_cifar(depth, batch_size=8)
        assert deepest_trainable(factory, device=dev, upper=20) == 0

    def test_validation(self):
        from repro.perf import deepest_trainable

        with pytest.raises(ValueError):
            deepest_trainable(lambda d: None, start=0)


class TestEnergyModel:
    def test_gist_cheaper_than_swapping_everywhere(self):
        from repro.models import build_model
        from repro.perf import measure_transfer_energy

        for name in ("alexnet", "vgg16"):
            g = build_model(name, batch_size=64)
            r = measure_transfer_energy(g, GistConfig.for_network(name))
            assert r.ratio > 2.0, name
            assert r.gist_j > 0

    def test_lossless_moves_less_than_lossy_plus_decode(self):
        from repro.models import scaled_vgg
        from repro.perf import measure_transfer_energy

        g = scaled_vgg(batch_size=16)
        binarize_only = measure_transfer_energy(g, GistConfig.binarize_only())
        full = measure_transfer_energy(g, GistConfig.full("fp16"))
        # Binarize alone touches fewer maps than the full pipeline.
        assert binarize_only.gist_j < full.gist_j
