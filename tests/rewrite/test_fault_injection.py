"""Fault injection: deliberately broken passes must fail the oracle.

Each test plants a realistic rewriter bug — a fusion that drops the bias,
an inplace mark that clobbers a stashed buffer, a CSE merge that ignores
the exactness restrictions — and asserts that
:func:`~repro.rewrite.equivalence.check_rewrite_equivalence` catches it
with a detail string naming what diverged.  If one of these passes starts
coming back clean, the oracle has lost its teeth.
"""

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.layers import (
    Add,
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FusedConvReLU,
    LocalResponseNorm,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.rewrite import check_rewrite_equivalence
from repro.rewrite.base import RewritePass, clone_node, rebuild
from repro.rewrite.passes import FuseConvReLUPass


def finish(b, x):
    x = b.add(Flatten(), x)
    x = b.add(Dense(5), x)
    x = b.add(SoftmaxCrossEntropy(), x)
    b.mark_output(x)
    return b.build()


class DroppedBiasFusedConvReLU(FusedConvReLU):
    """A fused op that forgets the convolution bias — a classic fusion bug."""

    def forward(self, xs, params, ctx, train=True):
        doctored = dict(params)
        doctored["b"] = np.zeros_like(params["b"])
        return super().forward(xs, doctored, ctx, train)


class DroppedBiasFusionPass(FuseConvReLUPass):
    name = "bad-fusion"

    def run(self, graph):
        rewritten, changes = super().run(graph)
        for node in rewritten.nodes:
            if isinstance(node.layer, FusedConvReLU):
                node.layer = DroppedBiasFusedConvReLU(node.layer.conv)
        return rewritten, changes


class RecklessInplacePass(RewritePass):
    """Marks every inplace-capable op, ignoring the safety analysis."""

    name = "bad-inplace"

    def run(self, graph):
        nodes = {n.node_id: clone_node(n) for n in graph.nodes}
        changes = 0
        for node in graph.nodes:
            if node.inplace or not node.layer.supports_inplace:
                continue
            if len(node.inputs) != 1 or node.inputs[0] == graph.input_id:
                continue
            nodes[node.node_id].inplace = True
            changes += 1
        return rebuild(graph, nodes, graph.output_id), changes


class ForgetfulCSEPass(RewritePass):
    """Merges any same-kind/same-input pair — including parameterised convs
    with *different* weights — and forgets to delete the duplicate node."""

    name = "bad-cse"

    def run(self, graph):
        groups = {}
        for node in graph.nodes:
            if node.node_id in (graph.input_id, graph.output_id):
                continue
            key = (node.kind, tuple(node.inputs), tuple(node.output_shape))
            groups.setdefault(key, []).append(node)
        merges = [sorted(m, key=lambda n: n.node_id)
                  for m in groups.values()
                  if len(m) == 2
                  # idempotence: once the dup dangles, leave it alone
                  and graph.consumers(m[1].node_id)]
        if not merges:
            return graph, 0
        nodes = {n.node_id: clone_node(n) for n in graph.nodes}
        remap = {dup.node_id: keeper.node_id for keeper, dup in merges}
        for node in nodes.values():
            if node.node_id not in remap:  # keep the dup dangling
                node.inputs = [remap.get(i, i) for i in node.inputs]
        return rebuild(graph, nodes, graph.output_id), len(merges)


class TestFaultInjection:
    def test_dropped_bias_fusion_is_caught(self):
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 3, pad=1), b.input)
        x = b.add(ReLU(), x)
        graph = finish(b, x)
        violations = check_rewrite_equivalence(
            graph, passes=[DroppedBiasFusionPass()]
        )
        assert violations
        # Dropping the bias changes the forward values immediately.
        assert any("loss diverged" in v.detail for v in violations)

    def test_reckless_inplace_is_caught(self):
        # LRN's backward reads its stashed output; flatten hands dropout a
        # *view* of that same buffer, so the bogus inplace mark overwrites
        # the stash and corrupts the gradients flowing back to the conv
        # (the forward values — and the loss — are untouched).  The pool
        # guarantees LRN a C-contiguous input, so flatten's reshape is a
        # genuine view rather than a defensive copy — the exact chain the
        # equivalence oracle originally caught on fuzz seed 4.
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 1), b.input)
        x = b.add(AvgPool2D(2, 2), x)
        x = b.add(LocalResponseNorm(size=3), x)
        x = b.add(Flatten(), x)
        x = b.add(Dropout(p=0.5, seed=3), x)
        graph = finish(b, x)
        violations = check_rewrite_equivalence(
            graph, passes=[RecklessInplacePass()]
        )
        assert violations
        assert any("not bit-identical" in v.detail for v in violations)
        assert not any("loss diverged" in v.detail for v in violations)

    def test_unsound_cse_merge_is_caught(self):
        # Two convs with identical config but independently initialised
        # weights are *not* common subexpressions; merging them changes
        # the forward values, and the undeleted duplicate stops receiving
        # gradient without having been removed.
        b = GraphBuilder("g", (2, 3, 8, 8))
        y1 = b.add(Conv2D(4, 1), b.input)
        y2 = b.add(Conv2D(4, 1), b.input)
        graph = finish(b, b.add(Add(), [y1, y2]))
        violations = check_rewrite_equivalence(
            graph, passes=[ForgetfulCSEPass()]
        )
        assert violations
        details = [v.detail for v in violations]
        assert any("loss diverged" in d for d in details)
        assert any("vanished" in d and "was not removed" in d
                   for d in details)

    def test_violations_carry_seed_and_subject(self):
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 3, pad=1), b.input)
        x = b.add(ReLU(), x)
        graph = finish(b, x)
        violations = check_rewrite_equivalence(
            graph, seed=17, passes=[DroppedBiasFusionPass()]
        )
        assert violations
        assert all(v.seed == 17 for v in violations)
        assert all(v.subject == graph.name for v in violations)
        assert all(v.oracle == "rewrite-equivalence" for v in violations)
