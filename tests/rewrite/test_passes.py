"""Unit tests for the individual rewrite passes and the pass manager."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.layers import (
    Add,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    FusedConvReLU,
    LocalResponseNorm,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.layers.pool import ArgmaxMaxPool2D
from repro.rewrite import (
    CSEPass,
    DEFAULT_PASSES,
    DeadStashEliminationPass,
    FuseConvReLUPass,
    InplacePass,
    PoolArgmaxPass,
    apply_passes,
    resolve_passes,
)


def finish(b, x):
    x = b.add(Flatten(), x)
    x = b.add(Dense(5), x)
    x = b.add(SoftmaxCrossEntropy(), x)
    b.mark_output(x)
    return b.build()


def conv_relu_graph():
    b = GraphBuilder("g", (2, 3, 8, 8))
    x = b.add(Conv2D(4, 3, pad=1), b.input)
    x = b.add(ReLU(), x)
    x = b.add(MaxPool2D(2, 2), x)
    return finish(b, x)


class TestFuseConvReLU:
    def test_fuses_single_consumer_chain(self):
        graph = conv_relu_graph()
        rewritten, changes = FuseConvReLUPass().run(graph)
        assert changes == 1
        assert len(rewritten.nodes) == len(graph.nodes) - 1
        fused = [n for n in rewritten.nodes if n.kind == "conv_relu"]
        assert len(fused) == 1
        # The fused node keeps the conv's name so parameters transplant.
        assert fused[0].name == "conv1"
        assert isinstance(fused[0].layer, FusedConvReLU)
        assert not any(n.kind == "relu" for n in rewritten.nodes)
        # The pool now consumes the fused node directly.
        (pool,) = [n for n in rewritten.nodes if n.kind == "maxpool"]
        assert pool.inputs == [fused[0].node_id]

    def test_skips_multi_consumer_conv(self):
        b = GraphBuilder("g", (2, 3, 8, 8))
        conv = b.add(Conv2D(3, 3, pad=1), b.input)
        relu = b.add(ReLU(), conv)
        merged = b.add(Add(), [conv, relu])  # conv has two consumers
        graph = finish(b, merged)
        _, changes = FuseConvReLUPass().run(graph)
        assert changes == 0


class TestPoolArgmax:
    def test_replaces_layer_and_drops_xy_stash(self):
        from repro.core.analysis import stash_bytes_by_class

        graph = conv_relu_graph()
        rewritten, changes = PoolArgmaxPass().run(graph)
        assert changes == 1
        (pool,) = [n for n in rewritten.nodes if n.kind == "maxpool"]
        assert type(pool.layer) is ArgmaxMaxPool2D
        before = sum(stash_bytes_by_class(graph).values())
        after = sum(stash_bytes_by_class(rewritten).values())
        assert after < before


class TestCSE:
    def build_dup_pair(self, extra_consumer=False):
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 1), b.input)
        y1 = b.add(ReLU(), x)
        y2 = b.add(ReLU(), x)
        refs = [y1, y2]
        if extra_consumer:
            refs.append(b.add(ReLU(), x))
        merged = b.add(Add(), refs)
        return finish(b, merged)

    def test_merges_duplicate_pair(self):
        graph = self.build_dup_pair()
        rewritten, changes = CSEPass().run(graph)
        assert changes == 1
        relus = [n for n in rewritten.nodes if n.kind == "relu"]
        assert len(relus) == 1
        (add,) = [n for n in rewritten.nodes if n.kind == "add"]
        # Both Add operands now point at the keeper (2-term sum preserved).
        assert add.inputs == [relus[0].node_id, relus[0].node_id]

    def test_rejects_when_input_has_extra_consumer(self):
        # A third consumer would turn the shared input's two-term gradient
        # accumulation into a reassociated sum, so the pass must pass.
        graph = self.build_dup_pair(extra_consumer=True)
        _, changes = CSEPass().run(graph)
        assert changes == 0

    def test_rejects_overlapping_maxpool(self):
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 1), b.input)
        y1 = b.add(MaxPool2D(3, stride=1), x)
        y2 = b.add(MaxPool2D(3, stride=1), x)
        graph = finish(b, b.add(Add(), [y1, y2]))
        _, changes = CSEPass().run(graph)
        assert changes == 0


class TestDeadStashElimination:
    def test_removes_dangling_branch(self):
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 1), b.input)
        dead = b.add(Conv2D(2, 1), x)
        b.add(ReLU(), dead)  # never reaches the loss
        graph = finish(b, x)
        rewritten, changes = DeadStashEliminationPass().run(graph)
        assert changes == 2
        names = {n.name for n in rewritten.nodes}
        assert "conv2" not in names and "relu1" not in names
        assert "conv1" in names


class TestInplace:
    def test_marks_immediately_consumed_map(self):
        b = GraphBuilder("g", (2, 3, 8, 8))
        x = b.add(Conv2D(4, 1), b.input)
        x = b.add(Dropout(p=0.3, seed=7), x)
        graph = finish(b, x)
        rewritten, changes = InplacePass().run(graph)
        assert changes >= 1
        marked = {n.name for n in rewritten.nodes if n.inplace}
        assert "dropout1" in marked

    def test_alias_chain_blocks_mark(self):
        # Regression for a soundness hole the equivalence oracle caught
        # (fuzz seed 4): flatten returns a *view* of LRN's output, and
        # LRN's backward reads that output, so the dropout behind the
        # flatten must not run inplace — it would clobber the stash.
        b = GraphBuilder("g", (2, 3, 4, 4))
        x = b.add(LocalResponseNorm(size=3), b.input)
        x = b.add(Flatten(), x)
        x = b.add(Dropout(p=0.3, seed=7), x)
        graph = finish(b, x)
        rewritten, _ = InplacePass().run(graph)
        marked = {n.name for n in rewritten.nodes if n.inplace}
        assert "dropout1" not in marked

    def test_clears_stale_marks(self):
        graph = conv_relu_graph()
        bogus = graph.node(graph.output_id)
        bogus.inplace = True  # no pass would mark the loss node
        rewritten, changes = InplacePass().run(graph)
        assert changes >= 1
        assert not rewritten.node(rewritten.output_id).inplace


class TestManager:
    def test_unknown_pass_name_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            resolve_passes(["fuse-conv-relu", "nope"])

    def test_defaults_cover_every_registered_pass(self):
        assert set(DEFAULT_PASSES) == {
            "fuse-conv-relu", "pool-argmax", "cse", "dead-stash", "inplace"
        }

    def test_fixed_point_and_report(self):
        graph = conv_relu_graph()
        result = apply_passes(graph)
        assert result.changed
        assert result.total_changes >= 2  # fusion + pool at least
        report = result.report()
        for name in DEFAULT_PASSES:
            assert name in report
        # Re-applying at the fixed point is a no-op.
        again = apply_passes(result.graph)
        assert again.total_changes == 0
        assert not again.changed

    def test_single_pass_selection(self):
        graph = conv_relu_graph()
        result = apply_passes(graph, ["pool-argmax"])
        assert [s.name for s in result.stats] == ["pool-argmax"]
        # Fusion disabled: the relu node must survive.
        assert any(n.kind == "relu" for n in result.graph.nodes)
