"""Pinned fuzz seeds: determinism and counterexample regressions.

Two kinds of pins:

* **determinism** — exact per-pass change counts for rewrite-shapes
  seeds where every pass fires.  A drift here means either the fuzzer's
  decision stream moved (breaking seed-replay of old failures) or a
  pass's trigger conditions changed silently.
* **counterexamples** — seeds whose graphs historically *failed* the
  rewrite-equivalence oracle and drove soundness fixes.  They must stay
  clean forever.
"""

import numpy as np

from repro.rewrite import apply_passes, check_rewrite_equivalence
from repro.verify.fuzzer import GraphFuzzer
from repro.verify.runner import verify_seed

#: rewrite-shapes seeds covering every pass, with exact change counts.
PINNED_REWRITE_SHAPES = {
    8: {"fuse-conv-relu": 2, "pool-argmax": 3, "cse": 1,
        "dead-stash": 1, "inplace": 2},
    20: {"fuse-conv-relu": 2, "pool-argmax": 2, "cse": 1,
         "dead-stash": 1, "inplace": 1},
    27: {"fuse-conv-relu": 2, "pool-argmax": 2, "cse": 2,
         "dead-stash": 1, "inplace": 1},
}

#: Default-mode node-kind stream for seed 19 — the strict-mode
#: counterexample seed other tests replay.  The rewrite-shapes flag must
#: not disturb the default decision stream that reproduces it.
PINNED_SEED_19_KINDS = None  # filled lazily by the test below


class TestPinnedDeterminism:
    def test_rewrite_shapes_seeds_fire_every_pass(self):
        for seed, expected in PINNED_REWRITE_SHAPES.items():
            graph = GraphFuzzer(seed).graph(max_ops=12, rewrite_shapes=True)
            result = apply_passes(graph)
            got = {s.name: s.changes for s in result.stats}
            assert got == expected, f"seed {seed}: {got} != {expected}"

    def test_default_stream_unchanged_by_rewrite_flag(self):
        # rewrite_shapes=False must generate byte-identical graphs to the
        # pre-flag fuzzer: the motif branch draws from the RNG only when
        # the flag is on.
        for seed in (0, 4, 19, 20):
            base = GraphFuzzer(seed).graph(max_ops=12)
            explicit = GraphFuzzer(seed).graph(max_ops=12,
                                               rewrite_shapes=False)
            assert [(n.name, n.kind, tuple(n.inputs)) for n in base.nodes] \
                == [(n.name, n.kind, tuple(n.inputs))
                    for n in explicit.nodes]


class TestCounterexampleRegressions:
    def test_seed_4_flatten_alias_stays_clean(self):
        # Historical failure: the inplace pass marked a dropout that
        # consumed a flatten *view* of an LRN output; the in-place write
        # clobbered the LRN's by-reference output stash and corrupted the
        # upstream gradients.  Fixed by walking the alias chain in
        # ``inplace_eligible_edges``.
        graph = GraphFuzzer(4).graph(max_ops=12)
        result = apply_passes(graph)
        marked = {n.name for n in result.graph.nodes if n.inplace}
        assert "dropout2" not in marked  # the consumer behind the flatten
        assert check_rewrite_equivalence(graph, seed=4,
                                         rewrite_result=result) == []

    def test_seed_20_layout_sensitivity_stays_clean(self):
        # Historical failure: running dropout in place preserved the conv
        # producer's non-contiguous (transposed einsum view) layout, and
        # the downstream batch-norm's pairwise mean/var then summed in a
        # different order than over the fresh contiguous array the
        # out-of-place dropout returns — a ~1e-7 gradient drift.  Fixed
        # by the executor's C-contiguity guard on the inplace dispatch.
        graph = GraphFuzzer(20).graph(max_ops=12)
        result = apply_passes(graph)
        assert any(n.inplace for n in result.graph.nodes)
        assert check_rewrite_equivalence(graph, seed=20,
                                         rewrite_result=result) == []

    def test_counterexample_seeds_pass_full_battery(self):
        for seed in (4, 20):
            assert verify_seed(seed, max_ops=12) == []
            assert verify_seed(seed, max_ops=12, rewrite_shapes=True) == []


class TestInplaceContiguityGuard:
    def test_non_contiguous_buffer_falls_back_out_of_place(self):
        # Directly pin the guard: an inplace-marked node fed a
        # non-contiguous buffer must leave that buffer untouched.
        from repro.graph.builder import GraphBuilder
        from repro.layers import (Conv2D, Dense, Dropout, Flatten,
                                  SoftmaxCrossEntropy)
        from repro.train.executor import GraphExecutor

        b = GraphBuilder("g", (2, 3, 4, 4))
        x = b.add(Conv2D(4, 1), b.input)  # einsum view: non-contiguous
        x = b.add(Dropout(p=0.5, seed=1), x)
        x = b.add(Flatten(), x)
        x = b.add(Dense(3), x)
        x = b.add(SoftmaxCrossEntropy(), x)
        b.mark_output(x)
        graph = apply_passes(b.build()).graph
        (dropout,) = [n for n in graph.nodes if n.kind == "dropout"]
        assert dropout.inplace

        ex = GraphExecutor(graph, seed=0)
        rng = np.random.default_rng(0)
        images = rng.standard_normal((2, 3, 4, 4)).astype(np.float32)
        labels = rng.integers(0, 3, size=2).astype(np.int64)

        captured = {}
        conv_node = [n for n in graph.nodes if n.kind == "conv"][0]
        conv_layer = conv_node.layer
        orig_forward = conv_layer.forward

        def spying_forward(xs, params, ctx, train=True):
            y = orig_forward(xs, params, ctx, train)
            captured["buf"] = y
            captured["copy"] = y.copy()
            return y

        conv_layer.forward = spying_forward
        try:
            ex.forward(images, labels)
        finally:
            conv_layer.forward = orig_forward
        if not captured["buf"].flags["C_CONTIGUOUS"]:
            # The guard must have routed dropout out of place, leaving
            # the conv's strided buffer bit-identical.
            assert np.array_equal(captured["buf"], captured["copy"])
