"""Hypothesis properties of the rewrite pipeline over fuzzed graphs."""

from hypothesis import given, settings, strategies as st

from repro.rewrite import DEFAULT_PASSES, apply_passes
from repro.verify.fuzzer import GraphFuzzer


def graph_key(graph):
    """Structural identity: nodes (name, kind, inplace) plus the edges."""
    return tuple(
        (n.name, n.kind, n.inplace, tuple(n.inputs))
        for n in graph.nodes
    )


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_pipeline_is_idempotent(seed):
    graph = GraphFuzzer(seed).graph(max_ops=10, rewrite_shapes=True)
    first = apply_passes(graph)
    second = apply_passes(first.graph)
    assert second.total_changes == 0
    assert graph_key(second.graph) == graph_key(first.graph)


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_fixed_point_is_order_independent(seed):
    graph = GraphFuzzer(seed).graph(max_ops=10, rewrite_shapes=True)
    forward = apply_passes(graph, DEFAULT_PASSES)
    backward = apply_passes(graph, tuple(reversed(DEFAULT_PASSES)))
    assert graph_key(forward.graph) == graph_key(backward.graph)


@given(seed=st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_rewritten_graphs_satisfy_plan_oracles(seed):
    # The rewritten graph must remain a first-class citizen of the whole
    # verification stack: allocator safety, plan bounds, hybrid-plan
    # safety and (trivially, since it is already at the fixed point) the
    # rewrite-equivalence oracle itself.
    from repro.verify.runner import verify_graph

    graph = GraphFuzzer(seed).graph(max_ops=8, rewrite_shapes=True)
    result = apply_passes(graph)
    violations = verify_graph(result.graph, seed=seed)
    assert violations == [], "\n".join(str(v) for v in violations)


@given(seed=st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_single_pass_toggling_reaches_its_own_fixed_point(seed):
    # Toggling: each pass runs alone (no other pass's stats appear) and
    # reaches a fixed point that re-application leaves untouched.
    graph = GraphFuzzer(seed).graph(max_ops=10, rewrite_shapes=True)
    for name in DEFAULT_PASSES:
        solo = apply_passes(graph, [name])
        assert [s.name for s in solo.stats] == [name]
        again = apply_passes(solo.graph, [name])
        assert again.total_changes == 0
        assert graph_key(again.graph) == graph_key(solo.graph)
