"""Standalone driver for the serve SIGKILL/resume durability test.

Run as ``python _serve_driver.py STATE_DIR``: submits a fixed batch of
fuzz jobs (slow enough to kill mid-pass) plus one plan job to the
service at STATE_DIR and drains the queue once.  Prints one
``JOB <fingerprint> <status> <source> <digest>`` line per job and
``DONE`` on success.  The test kills this process mid-pass, re-invokes
it with the same state dir, and checks that the resumed run produced
bit-identical digests without re-running journaled jobs.
"""

import sys

from repro.serve import JobService

JOBS = [
    {"kind": "fuzz", "seeds": 3, "start_seed": seed, "name": f"fuzz-{seed}"}
    for seed in range(6)
] + [
    {"kind": "plan", "model": "tiny_cnn", "batch_size": 4, "name": "plan"},
]


def main(state_dir: str) -> int:
    service = JobService(state_dir)
    for job in JOBS:
        service.submit(job)
    report = service.run_pending()
    for record in report.jobs:
        print(f"JOB {record.fingerprint} {record.status} "
              f"{record.source} {record.digest}")
    if not report.ok:
        return 1
    print(f"SCHEDULED {report.scheduled}")
    print("DONE")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
