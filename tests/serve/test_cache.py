"""Content-addressed cache: hits, misses, integrity, canonical values."""

import json

from repro.serve import ContentCache, content_address, value_digest


def _entry_path(cache, key):
    address = content_address(key)
    return cache.root / address[:2] / f"{address}.json"


class TestContentCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        key = {"kind": "job-result", "fingerprint": "abc"}
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1,
                                 "corrupt": 0, "puts": 1}

    def test_key_order_irrelevant(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        cache.put({"a": 1, "b": 2}, "value")
        assert cache.get({"b": 2, "a": 1}) == "value"

    def test_put_returns_canonical_value(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        stored = cache.put({"k": 1}, {"b": 2, "a": (1, 2)})
        # Tuples become lists, exactly what a later get() serves.
        assert stored == {"a": [1, 2], "b": 2}
        assert cache.get({"k": 1}) == stored
        assert value_digest(cache.get({"k": 1})) == value_digest(stored)

    def test_corrupt_value_detected_and_recomputed(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        key = {"k": "v"}
        cache.put(key, {"answer": 41})
        path = _entry_path(cache, key)
        # Flip the value without updating the integrity digest.
        entry = json.loads(path.read_text())
        entry["value"] = {"answer": 42}
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None  # detected, deleted, miss
        assert cache.corrupt == 1
        assert not path.exists()
        # The caller recomputes and overwrites; the cache heals.
        cache.put(key, {"answer": 41})
        assert cache.get(key) == {"answer": 41}

    def test_truncated_entry_detected(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        key = {"k": "v"}
        cache.put(key, [1, 2, 3])
        path = _entry_path(cache, key)
        path.write_text(path.read_text()[:20])  # torn write simulation
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_misfiled_entry_detected(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        cache.put({"k": "one"}, "a")
        cache.put({"k": "two"}, "b")
        one, two = _entry_path(cache, {"k": "one"}), _entry_path(cache, {"k": "two"})
        two.write_text(one.read_text())  # entry stored under wrong address
        assert cache.get({"k": "two"}) is None
        assert cache.corrupt == 1

    def test_len_counts_entries(self, tmp_path):
        cache = ContentCache(tmp_path / "cache")
        assert len(cache) == 0
        for i in range(5):
            cache.put({"i": i}, i)
        assert len(cache) == 5
        cache.put({"i": 0}, 0)  # overwrite, not a new entry
        assert len(cache) == 5
