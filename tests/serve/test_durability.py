"""Durability: SIGKILL the serve daemon mid-pass, resume, pin digests.

The acceptance gate for the service layer: a daemon killed mid-job must
resume from its run journal and produce results bit-identical to an
uninterrupted run, without re-executing jobs that already reached a
terminal journal record, and a further resubmission must be answered
entirely from the content cache.
"""

import os
import signal
import subprocess
import sys
import time
from collections import Counter
from pathlib import Path

from repro.ioutil import read_jsonl

_DRIVER = Path(__file__).with_name("_serve_driver.py")
_NUM_JOBS = 7  # 6 fuzz + 1 plan, must match the driver


def _spawn(state_dir):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, str(_DRIVER), str(state_dir)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


def _digests(output: bytes):
    """``{fingerprint: digest}`` from the driver's JOB lines."""
    digests = {}
    for line in output.decode().splitlines():
        if line.startswith("JOB "):
            _, fingerprint, status, _source, digest = line.split()
            assert status == "ok", line
            digests[fingerprint] = digest
    return digests


def test_sigkill_mid_pass_then_resume_is_bit_identical(tmp_path):
    # Reference: an uninterrupted cold run in its own state dir.
    cold = _spawn(tmp_path / "cold")
    out, _ = cold.communicate(timeout=300)
    assert cold.returncode == 0, out.decode()
    reference = _digests(out)
    assert len(reference) == _NUM_JOBS

    # Victim: kill the daemon once at least two jobs are journaled but
    # before the pass finishes (queue entries drop only at pass end).
    state = tmp_path / "state"
    journal = state / "journal.jsonl"
    victim = _spawn(state)
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            done = list(read_jsonl(journal)) if journal.exists() else []
            if len(done) >= 2:
                break
            if victim.poll() is not None:
                raise AssertionError(
                    f"driver finished before the kill:\n"
                    f"{victim.stdout.read().decode()}")
            time.sleep(0.02)
        else:
            raise AssertionError("driver never journaled two jobs")
        victim.send_signal(signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    journaled_before_kill = [record["key"] for record in read_jsonl(journal)]
    assert 2 <= len(journaled_before_kill) < _NUM_JOBS

    # Resume with identical arguments: completes, digests pinned.
    resumed = _spawn(state)
    out, _ = resumed.communicate(timeout=300)
    assert resumed.returncode == 0, out.decode()
    assert b"DONE" in out
    assert _digests(out) == reference

    # Jobs journaled before the kill were replayed, not re-executed:
    # replay appends no new record, so their counts stay at one.
    runs = Counter(record["key"] for record in read_jsonl(journal))
    for key in journaled_before_kill:
        assert runs[key] == 1, f"journaled job {key} was re-run"

    # Third submission of the same batch: pure cache, no pool work.
    warm = _spawn(state)
    out, _ = warm.communicate(timeout=300)
    assert warm.returncode == 0, out.decode()
    assert b"SCHEDULED 0" in out
    assert _digests(out) == reference
    assert all(line.split()[3] == "result-cache"
               for line in out.decode().splitlines()
               if line.startswith("JOB "))
