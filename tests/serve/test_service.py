"""JobService: dedupe, cache hits, durability of queue state, reports."""

import json

import pytest

from repro.serve import JobService, content_address


def _plan_spec(**overrides):
    spec = {"kind": "plan", "model": "tiny_cnn", "batch_size": 4}
    spec.update(overrides)
    return spec


class TestSubmitAndQueue:
    def test_submit_returns_fingerprint_and_queues(self, tmp_path):
        service = JobService(tmp_path / "state")
        fingerprint = service.submit(_plan_spec())
        assert len(fingerprint) == 64
        (entry,) = service.queued()
        assert entry["fingerprint"] == fingerprint
        assert entry["job"]["kind"] == "plan"

    def test_invalid_spec_raises(self, tmp_path):
        from repro.serve import JobSpecError

        service = JobService(tmp_path / "state")
        with pytest.raises(JobSpecError):
            service.submit({"kind": "plan", "oops": 1})


class TestRunPending:
    def test_duplicate_submissions_collapse_to_one_cache_entry(self, tmp_path):
        service = JobService(tmp_path / "state")
        for name in ("a", "b", "c"):
            service.submit(_plan_spec(name=name))
        report = service.run_pending()
        (job,) = report.jobs
        assert job.ok
        assert job.submissions == 3
        assert report.scheduled == 1  # one unit for three submissions
        # One result entry + one plan entry, never three.
        result_entries = [
            path for path in (tmp_path / "state" / "cache").glob("*/*.json")
            if json.loads(path.read_text())["key"]["kind"] == "job-result"
        ]
        assert len(result_entries) == 1

    def test_resubmission_served_from_cache_bit_identical(self, tmp_path):
        service = JobService(tmp_path / "state")
        service.submit(_plan_spec())
        cold = service.run_pending()
        assert cold.jobs[0].source == "computed"
        hits_before = service.cache.hits

        service.submit(_plan_spec(name="again"))
        warm = service.run_pending()
        (job,) = warm.jobs
        assert job.source == "result-cache"
        assert warm.scheduled == 0  # no pool work on the warm path
        assert warm.result_cache_hits == 1
        assert service.cache.hits == hits_before + 1
        assert job.digest == cold.jobs[0].digest  # bit-identical
        assert job.result == cold.jobs[0].result

    def test_plan_cache_shared_across_isomorphic_requests(self, tmp_path):
        service = JobService(tmp_path / "state")
        service.submit(_plan_spec(name="first"))
        service.run_pending()
        # Same graph+policy under a *different job identity*: drop the
        # result cache so the plan cache is the only warm layer.
        for path in (tmp_path / "state" / "cache").glob("*/*.json"):
            if json.loads(path.read_text())["key"]["kind"] == "job-result":
                path.unlink()
        service.submit(_plan_spec())
        report = service.run_pending()
        (job,) = report.jobs
        assert job.ok
        assert job.source == "plan-cache"
        assert report.plan_cache_hits == 1
        assert report.scheduled == 0

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        service = JobService(tmp_path / "state")
        fingerprint = service.submit(_plan_spec())
        cold = service.run_pending()
        # Poison every cache entry (result + plan).
        for path in (tmp_path / "state" / "cache").glob("*/*.json"):
            entry = json.loads(path.read_text())
            entry["value_sha256"] = "0" * 64
            path.write_text(json.dumps(entry))
        service.submit(_plan_spec())
        report = service.run_pending()
        (job,) = report.jobs
        assert job.ok
        assert job.source == "computed"  # fell all the way through
        assert service.cache.corrupt >= 1
        assert job.digest == cold.jobs[0].digest  # recomputed identically
        # And the cache healed: next pass is a pure hit.
        service.submit(_plan_spec())
        healed = service.run_pending()
        assert healed.jobs[0].source == "result-cache"
        assert healed.jobs[0].digest == cold.jobs[0].digest

    def test_failed_job_reported_nonfatal(self, tmp_path):
        service = JobService(tmp_path / "state")
        # Valid spec whose execution fails: unknown model reaches the
        # runner only if validation is bypassed, so instead enqueue a
        # raw queue entry with a bad payload format.
        from repro.ioutil import append_jsonl_line

        append_jsonl_line(service.queue_path, {
            "format": 1, "fingerprint": "f" * 64, "name": "bad",
            "job": {"format": 1, "kind": "plan", "params": {"bogus": True}},
        })
        service.submit(_plan_spec())
        report = service.run_pending()
        assert not report.ok
        by_status = {job.status for job in report.jobs}
        assert by_status == {"invalid", "ok"}
        assert service.queued() == []  # both drained

    def test_queue_drained_and_new_submissions_survive(self, tmp_path):
        service = JobService(tmp_path / "state")
        service.submit(_plan_spec())
        service.run_pending()
        assert service.queued() == []

    def test_compaction_runs_each_pass(self, tmp_path):
        service = JobService(tmp_path / "state")
        service.submit(_plan_spec())
        service.run_pending()
        service.submit(_plan_spec(batch_size=8))
        report = service.run_pending()
        kept, _dropped = report.compaction
        assert kept == 1  # the plan job journaled by pass 1

    def test_report_json_round_trips(self, tmp_path):
        service = JobService(tmp_path / "state")
        service.submit(_plan_spec())
        report = service.run_pending()
        blob = json.dumps(report.to_json(), sort_keys=True)
        parsed = json.loads(blob)
        assert parsed["ok"] is True
        assert parsed["scheduled"] == 1
        assert "entries" in parsed["cache"]


class TestServeForever:
    def test_bounded_polls_process_queue(self, tmp_path):
        service = JobService(tmp_path / "state")
        service.submit(_plan_spec())
        reports = []
        failures = service.serve_forever(poll_s=0.0, max_polls=2,
                                         on_report=reports.append)
        assert failures == 0
        assert len(reports) == 1  # second poll saw an empty queue
        assert reports[0].jobs[0].ok
