"""Job-spec validation, canonicalisation and fingerprint identity."""

import json

import pytest

from repro.serve import JobSpecError, load_job_specs, validate_job_spec


class TestValidate:
    def test_defaults_filled_before_fingerprint(self):
        terse = validate_job_spec({"kind": "plan", "model": "tiny_cnn"})
        spelled = validate_job_spec({
            "kind": "plan", "model": "tiny_cnn", "batch_size": 8,
            "strategy": "hybrid", "budget": 0.15, "config": "lossless",
            "rewrite": False,
        })
        assert terse.params == spelled.params
        assert terse.fingerprint() == spelled.fingerprint()

    def test_name_is_not_part_of_identity(self):
        a = validate_job_spec({"kind": "fuzz", "seeds": 3, "name": "a"})
        b = validate_job_spec({"kind": "fuzz", "seeds": 3, "name": "b"})
        assert a.fingerprint() == b.fingerprint()

    def test_param_change_changes_fingerprint(self):
        a = validate_job_spec({"kind": "fuzz", "seeds": 3})
        b = validate_job_spec({"kind": "fuzz", "seeds": 4})
        assert a.fingerprint() != b.fingerprint()

    def test_unknown_field_rejected(self):
        with pytest.raises(JobSpecError, match="unknown field"):
            validate_job_spec({"kind": "plan", "modle": "tiny_cnn"})

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobSpecError, match="kind"):
            validate_job_spec({"kind": "deploy"})

    def test_bad_values_rejected(self):
        with pytest.raises(JobSpecError, match="batch_size"):
            validate_job_spec({"kind": "train", "batch_size": 0})
        with pytest.raises(JobSpecError, match="model"):
            validate_job_spec({"kind": "plan", "model": "resnet999"})
        with pytest.raises(JobSpecError, match="rewrite"):
            validate_job_spec({"kind": "plan", "rewrite": "yes"})

    def test_non_mapping_rejected(self):
        with pytest.raises(JobSpecError, match="mapping"):
            validate_job_spec(["kind", "plan"])


class TestLoadFiles:
    def test_json_single_mapping(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(json.dumps({"kind": "fuzz", "seeds": 2}))
        (spec,) = load_job_specs(path)
        assert spec.kind == "fuzz"
        assert spec.params["seeds"] == 2

    def test_json_jobs_list(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"jobs": [
            {"kind": "fuzz", "seeds": 1},
            {"kind": "plan", "model": "tiny_cnn", "batch_size": 4},
        ]}))
        specs = load_job_specs(path)
        assert [spec.kind for spec in specs] == ["fuzz", "plan"]

    def test_yaml_list(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "jobs.yaml"
        path.write_text(
            "jobs:\n"
            "  - kind: plan\n"
            "    name: nightly\n"
            "    model: tiny_cnn\n"
            "    batch_size: 4\n"
            "  - kind: fuzz\n"
            "    seeds: 2\n"
        )
        specs = load_job_specs(path)
        assert specs[0].name == "nightly"
        assert specs[1].params["seeds"] == 2

    def test_yaml_json_equivalence(self, tmp_path):
        pytest.importorskip("yaml")
        jpath = tmp_path / "job.json"
        jpath.write_text(json.dumps({"kind": "plan", "model": "tiny_cnn"}))
        ypath = tmp_path / "job.yaml"
        ypath.write_text("kind: plan\nmodel: tiny_cnn\n")
        (jspec,), (yspec,) = load_job_specs(jpath), load_job_specs(ypath)
        assert jspec.fingerprint() == yspec.fingerprint()

    def test_invalid_job_names_file_and_index(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([{"kind": "fuzz"},
                                    {"kind": "plan", "oops": 1}]))
        with pytest.raises(JobSpecError, match=r"jobs\.json \(job 1\)"):
            load_job_specs(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(JobSpecError, match="cannot read"):
            load_job_specs(tmp_path / "nope.yaml")

    def test_empty_list_rejected(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text("[]")
        with pytest.raises(JobSpecError, match="expected"):
            load_job_specs(path)
