"""Tests for TensorSpec."""

import pytest

from repro.dtypes import BIT1, FP16, FP32
from repro.tensor import TensorCategory, TensorSpec


class TestTensorSpec:
    def test_elements_and_bytes(self):
        spec = TensorSpec("t", (64, 3, 224, 224))
        assert spec.num_elements == 64 * 3 * 224 * 224
        assert spec.size_bytes == 4 * spec.num_elements

    def test_packed_dtype_bytes(self):
        spec = TensorSpec("t", (33,), BIT1)
        assert spec.size_bytes == 8  # two words

    def test_with_dtype_renames(self):
        spec = TensorSpec("fm", (10, 10))
        enc = spec.with_dtype(FP16, ".enc")
        assert enc.name == "fm.enc"
        assert enc.dtype is FP16
        assert spec.dtype is FP32  # original untouched

    def test_with_category(self):
        spec = TensorSpec("fm", (4,))
        enc = spec.with_category(TensorCategory.ENCODED)
        assert enc.category is TensorCategory.ENCODED
        assert spec.category is TensorCategory.FEATURE_MAP

    def test_rejects_empty_shape(self):
        with pytest.raises(ValueError):
            TensorSpec("t", ())

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorSpec("t", (4, 0))

    def test_str(self):
        assert "4x2" in str(TensorSpec("t", (4, 2)))
