"""Meta-tests on API quality: docstrings, exports, determinism."""

import importlib
import inspect
import pkgutil

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.dtypes",
    "repro.encodings",
    "repro.graph",
    "repro.layers",
    "repro.memory",
    "repro.models",
    "repro.perf",
    "repro.tensor",
    "repro.train",
]


def iter_public_objects():
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            yield module_name, name, getattr(module, name)


class TestDocumentation:
    def test_every_module_has_docstring(self):
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_every_submodule_has_docstring(self):
        for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro."):
            if name.endswith("__main__"):
                continue  # importing it would execute the CLI
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"

    def test_every_public_object_documented(self):
        undocumented = []
        for module_name, name, obj in iter_public_objects():
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_document_methods(self):
        undocumented = []
        for module_name, name, obj in iter_public_objects():
            if not inspect.isclass(obj):
                continue
            for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                if meth_name.startswith("_"):
                    continue
                if meth.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited elsewhere
                if not inspect.getdoc(meth):
                    undocumented.append(f"{module_name}.{name}.{meth_name}")
        assert not undocumented, f"missing method docstrings: {undocumented}"


class TestExports:
    def test_all_lists_are_sorted_sets(self):
        for module_name in PUBLIC_MODULES:
            module = importlib.import_module(module_name)
            exported = getattr(module, "__all__", [])
            assert len(exported) == len(set(exported)), module_name
            for name in exported:
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))


class TestDeterminism:
    def test_static_analysis_is_deterministic(self):
        from repro.core import Gist, GistConfig
        from repro.models import build_model

        results = set()
        for _ in range(3):
            graph = build_model("alexnet", batch_size=16)
            report = Gist(GistConfig.full("fp8")).measure_mfr(graph)
            results.add((report.baseline_bytes, report.gist_bytes))
        assert len(results) == 1

    def test_allocator_order_independent_of_dict_order(self):
        # Same tensors in different list orders must allocate to the same
        # total under the greedy-size policy (it sorts internally).
        from repro.graph.liveness import LiveTensor, ROLE_FEATURE_MAP
        from repro.memory import StaticAllocator
        from repro.tensor import TensorSpec

        tensors = [
            LiveTensor(TensorSpec(f"t{i}", (100 + i,)), i % 7, i % 7 + 2,
                       0, ROLE_FEATURE_MAP)
            for i in range(40)
        ]
        a = StaticAllocator().allocate(tensors).total_bytes
        b = StaticAllocator().allocate(list(reversed(tensors))).total_bytes
        assert a == b
