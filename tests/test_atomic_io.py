"""Crash-safety of on-disk artefacts: goldens, result exports, journals.

The regression scenario: a process dies (or the disk errors) midway
through writing a results/golden file.  Pre-fix, ``export_json`` and
``TraceDigest.save_golden`` wrote the destination in place, so the crash
left a corrupt file that poisoned later conformance checks.  These tests
simulate the half-written crash and assert the destination always holds
a complete, parseable artefact.
"""

import json
import os
import pathlib

import pytest

from repro.diagnostics.digest import StepDigest, TraceDigest, load_golden
from repro.ioutil import append_jsonl_line, atomic_write_text, read_jsonl


def _crashy_write_text(monkeypatch):
    """Make every Path.write_text write half its text, then die."""

    def half_write(self, data, *args, **kwargs):
        with open(self, "w") as handle:
            handle.write(data[: len(data) // 2])
        raise OSError("simulated crash mid-write")

    monkeypatch.setattr(pathlib.Path, "write_text", half_write)


def _tiny_digest(loss: float) -> TraceDigest:
    step = StepDigest(loss=loss, loss_hash="a" * 64, grads_hash="b" * 64,
                      stash_hash="c" * 64)
    return TraceDigest(model="tiny_cnn", policy="baseline", seed=0,
                       steps=[step])


class TestAtomicWriteText:
    def test_failure_leaves_previous_contents(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"v": 1}')

        def broken_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            atomic_write_text(target, '{"v": 2}')
        assert json.loads(target.read_text()) == {"v": 1}
        # The aborted temp file was cleaned up.
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"


class TestJsonlAppend:
    def test_round_trip_and_truncated_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append_jsonl_line(path, {"i": 0})
        append_jsonl_line(path, {"i": 1})
        with open(path, "a") as handle:
            handle.write('{"i": 2, "trunc')  # crash mid-append
        assert list(read_jsonl(path)) == [{"i": 0}, {"i": 1}]

    def test_missing_file_reads_empty(self, tmp_path):
        assert list(read_jsonl(tmp_path / "absent.jsonl")) == []


class TestGoldenCrashSafety:
    def test_save_golden_never_leaves_partial_file(self, tmp_path,
                                                   monkeypatch):
        # Regression: an in-place write_text crash used to corrupt the
        # golden; now the previous golden must survive any crash.
        path = tmp_path / "golden.json"
        _tiny_digest(1.0).save_golden(path)
        _crashy_write_text(monkeypatch)
        try:
            _tiny_digest(2.0).save_golden(path)
        except OSError:
            pass
        golden = load_golden(path)  # parseable either way
        assert golden.steps[0].loss in (1.0, 2.0)

    def test_save_golden_still_writes(self, tmp_path):
        path = tmp_path / "golden.json"
        _tiny_digest(3.0).save_golden(path)
        assert load_golden(path).steps[0].loss == 3.0


class TestExportCrashSafety:
    def test_export_json_never_leaves_partial_file(self, tmp_path,
                                                   monkeypatch):
        from repro.analysis.export import export_json

        path = tmp_path / "results.json"
        export_json(path, batch_size=8, models=["tiny_cnn"])
        first = json.loads(path.read_text())
        _crashy_write_text(monkeypatch)
        try:
            export_json(path, batch_size=8, models=["tiny_cnn"])
        except OSError:
            pass
        assert json.loads(path.read_text()) == first
