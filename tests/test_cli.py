"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_models_lists_suite(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet", "vgg16", "inception"):
            assert name in out

    def test_summary(self, capsys):
        assert main(["summary", "tiny_cnn", "--batch-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out
        assert "forward FLOPs" in out

    def test_mfr(self, capsys):
        assert main(["mfr", "tiny_cnn", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "MFR" in out
        assert "binarize" in out

    def test_mfr_dynamic_lossless(self, capsys):
        assert main(
            ["mfr", "tiny_cnn", "--batch-size", "8", "--config", "lossless",
             "--dynamic"]
        ) == 0
        assert "MFR" in capsys.readouterr().out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "tiny_cnn", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "stashed_feature_maps" in out
        assert "relu_pool" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "tiny_cnn", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "gist overhead" in out
        assert "vdnn overhead" in out

    def test_train_smoke(self, capsys):
        assert main(["train", "--policy", "dpr-fp16", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["summary", "lenet-9000"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLITimeline:
    def test_mfr_timeline(self, capsys):
        assert main(["mfr", "tiny_cnn", "--batch-size", "8",
                     "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out
        assert "gist:" in out


class TestCLITrace:
    def test_trace_prints_step_table(self, capsys):
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "ratio" in out
        assert len([l for l in out.splitlines() if l.strip()]) >= 4

    def test_trace_with_invariants(self, capsys):
        assert main(["trace", "--model", "tiny_cnn", "--steps", "1",
                     "--check-invariants"]) == 0
        assert "invariants" in capsys.readouterr().out

    def test_trace_golden_round_trip(self, tmp_path, capsys):
        golden = str(tmp_path / "g.json")
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--save-golden", golden]) == 0
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--compare-golden", golden]) == 0
        assert "golden match" in capsys.readouterr().out

    def test_trace_golden_mismatch_exits_nonzero(self, tmp_path, capsys):
        golden = str(tmp_path / "g.json")
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--policy", "gist-lossless",
                     "--save-golden", golden]) == 0
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--policy", "gist-fp8",
                     "--compare-golden", golden]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_trace_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["trace", "--policy", "gist-fp99"])


class TestCLIPlan:
    def test_plan_prints_decision_table(self, capsys):
        assert main(["plan", "scaled_vgg", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out
        assert "baseline allocated" in out
        assert "plan allocated" in out
        assert "pure gist" in out and "pure swap" in out

    def test_plan_recompute_strategy_shows_chains(self, capsys):
        assert main(["plan", "scaled_vgg", "--batch-size", "8",
                     "--strategy", "recompute", "--budget", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "hybrid-recompute" in out
        assert "recompute <-" in out  # per-tensor source chains

    def test_plan_lossy_config(self, capsys):
        assert main(["plan", "scaled_vgg", "--batch-size", "8",
                     "--config", "fp8"]) == 0
        assert "budget" in capsys.readouterr().out

    def test_plan_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["plan", "scaled_vgg", "--strategy", "telepathy"])
