"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_models_lists_suite(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("alexnet", "vgg16", "inception"):
            assert name in out

    def test_summary(self, capsys):
        assert main(["summary", "tiny_cnn", "--batch-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out
        assert "forward FLOPs" in out

    def test_mfr(self, capsys):
        assert main(["mfr", "tiny_cnn", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "MFR" in out
        assert "binarize" in out

    def test_mfr_dynamic_lossless(self, capsys):
        assert main(
            ["mfr", "tiny_cnn", "--batch-size", "8", "--config", "lossless",
             "--dynamic"]
        ) == 0
        assert "MFR" in capsys.readouterr().out

    def test_breakdown(self, capsys):
        assert main(["breakdown", "tiny_cnn", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "stashed_feature_maps" in out
        assert "relu_pool" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "tiny_cnn", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "gist overhead" in out
        assert "vdnn overhead" in out

    def test_train_smoke(self, capsys):
        assert main(["train", "--policy", "dpr-fp16", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["summary", "lenet-9000"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestCLITimeline:
    def test_mfr_timeline(self, capsys):
        assert main(["mfr", "tiny_cnn", "--batch-size", "8",
                     "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out
        assert "gist:" in out


class TestCLITrace:
    def test_trace_prints_step_table(self, capsys):
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "loss" in out and "ratio" in out
        assert len([l for l in out.splitlines() if l.strip()]) >= 4

    def test_trace_with_invariants(self, capsys):
        assert main(["trace", "--model", "tiny_cnn", "--steps", "1",
                     "--check-invariants"]) == 0
        assert "invariants" in capsys.readouterr().out

    def test_trace_golden_round_trip(self, tmp_path, capsys):
        golden = str(tmp_path / "g.json")
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--save-golden", golden]) == 0
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--compare-golden", golden]) == 0
        assert "golden match" in capsys.readouterr().out

    def test_trace_golden_mismatch_exits_nonzero(self, tmp_path, capsys):
        golden = str(tmp_path / "g.json")
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--policy", "gist-lossless",
                     "--save-golden", golden]) == 0
        assert main(["trace", "--model", "tiny_cnn", "--steps", "2",
                     "--policy", "gist-fp8",
                     "--compare-golden", golden]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_trace_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["trace", "--policy", "gist-fp99"])


class TestCLIPlan:
    def test_plan_prints_decision_table(self, capsys):
        assert main(["plan", "scaled_vgg", "--batch-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "decision" in out
        assert "baseline allocated" in out
        assert "plan allocated" in out
        assert "pure gist" in out and "pure swap" in out

    def test_plan_recompute_strategy_shows_chains(self, capsys):
        assert main(["plan", "scaled_vgg", "--batch-size", "8",
                     "--strategy", "recompute", "--budget", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "hybrid-recompute" in out
        assert "recompute <-" in out  # per-tensor source chains

    def test_plan_lossy_config(self, capsys):
        assert main(["plan", "scaled_vgg", "--batch-size", "8",
                     "--config", "fp8"]) == 0
        assert "budget" in capsys.readouterr().out

    def test_plan_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["plan", "scaled_vgg", "--strategy", "telepathy"])


class TestCLIServe:
    @staticmethod
    def _spec_file(tmp_path, name="jobs.json", jobs=None):
        import json

        path = tmp_path / name
        path.write_text(json.dumps(jobs if jobs is not None else [
            {"kind": "plan", "model": "tiny_cnn", "batch_size": 4,
             "name": "plan-a"},
        ]))
        return str(path)

    def test_submit_then_serve_then_warm_resubmit(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        spec = self._spec_file(tmp_path)
        assert main(["submit", spec, "--state", state]) == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "kind=plan" in out

        assert main(["serve", "--state", state, "--max-polls", "1"]) == 0
        out = capsys.readouterr().out
        assert "source=computed" in out
        assert "scheduled: 1" in out

        # One-shot resubmission of the identical spec: pure cache hit.
        assert main(["serve", "--state", state, "--jobs", spec]) == 0
        out = capsys.readouterr().out
        assert "source=result-cache" in out
        assert "scheduled: 0" in out
        assert "result-cache hits: 1" in out

    def test_serve_oneshot_runs_batch(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        spec = self._spec_file(tmp_path, jobs=[
            {"kind": "plan", "model": "tiny_cnn", "batch_size": 4},
            {"kind": "fuzz", "seeds": 1},
        ])
        assert main(["serve", "--state", state, "--jobs", spec]) == 0
        out = capsys.readouterr().out
        assert out.count("status=ok") == 2

    @pytest.mark.parametrize("argv", [
        ["submit", "{missing}", "--state", "{state}"],
        ["serve", "--state", "{state}", "--jobs", "{missing}"],
        ["submit", "{invalid}", "--state", "{state}"],
        ["serve", "--state", "{state}", "--jobs", "{invalid}"],
    ])
    def test_spec_errors_exit_2(self, tmp_path, capsys, argv):
        import json

        invalid = tmp_path / "bad.json"
        invalid.write_text(json.dumps([{"kind": "plan", "bogus": 1}]))
        fill = {"state": str(tmp_path / "state"),
                "missing": str(tmp_path / "nope.yaml"),
                "invalid": str(invalid)}
        assert main([arg.format(**fill) for arg in argv]) == 2
        assert "error:" in capsys.readouterr().err

    def test_failed_job_exits_1(self, tmp_path, capsys):
        # A queue entry that validates at submit time cannot fail later
        # by construction, so inject a malformed entry directly -- the
        # daemon must drain it, report it, and exit non-zero.
        import json

        state = tmp_path / "state"
        state.mkdir()
        with open(state / "queue.jsonl", "w") as fh:
            fh.write(json.dumps({
                "format": 1, "fingerprint": "f" * 64, "name": "bad",
                "job": {"format": 1, "kind": "plan",
                        "params": {"bogus": True}},
            }) + "\n")
        assert main(["serve", "--state", str(state),
                     "--max-polls", "1"]) == 1
        assert "status=invalid" in capsys.readouterr().out
