"""Tests for the dtype descriptors and their byte accounting."""

import pytest

from repro.dtypes import (
    BIT1,
    DPR_FORMATS,
    FP8,
    FP10,
    FP16,
    FP32,
    NIBBLE4,
    UINT8,
    dtype_by_name,
)


class TestSizeAccounting:
    def test_fp32(self):
        assert FP32.size_bytes(10) == 40

    def test_fp16_packs_two_per_word(self):
        assert FP16.size_bytes(2) == 4
        assert FP16.size_bytes(3) == 8  # rounds up to whole words
        assert FP16.size_bytes(1000) == 2000

    def test_fp10_packs_three_per_word(self):
        # The paper: 3 x 10-bit values per 4 bytes, 2 bits wasted.
        assert FP10.size_bytes(3) == 4
        assert FP10.size_bytes(4) == 8
        assert FP10.size_bytes(999) == 4 * 333

    def test_fp8_packs_four_per_word(self):
        assert FP8.size_bytes(4) == 4
        assert FP8.size_bytes(5) == 8

    def test_bit1_is_32x_smaller(self):
        n = 32 * 1000
        assert FP32.size_bytes(n) / BIT1.size_bytes(n) == 32.0

    def test_nibble_is_8x_smaller(self):
        n = 8 * 100
        assert FP32.size_bytes(n) / NIBBLE4.size_bytes(n) == 8.0

    def test_zero_elements(self):
        for dt in (FP32, FP16, FP10, FP8, BIT1, NIBBLE4, UINT8):
            assert dt.size_bytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FP32.size_bytes(-1)


class TestMinifloatFields:
    def test_paper_field_layouts(self):
        # FP16: 1/5/10, FP10: 1/5/4, FP8: 1/4/3 (paper Section IV-A).
        assert (FP16.exponent_bits, FP16.mantissa_bits) == (5, 10)
        assert (FP10.exponent_bits, FP10.mantissa_bits) == (5, 4)
        assert (FP8.exponent_bits, FP8.mantissa_bits) == (4, 3)

    def test_bias(self):
        assert FP16.exponent_bias == 15
        assert FP8.exponent_bias == 7
        assert FP32.exponent_bias == 127

    def test_max_finite_ordering(self):
        assert FP8.max_finite < FP10.max_finite < FP16.max_finite
        assert FP16.max_finite == 65504.0  # IEEE half precision
        assert FP8.max_finite == 240.0

    def test_min_normal(self):
        assert FP16.min_normal == 2.0**-14
        assert FP8.min_normal == 2.0**-6

    def test_non_float_has_no_exponent(self):
        with pytest.raises(ValueError):
            _ = BIT1.exponent_bias
        with pytest.raises(ValueError):
            _ = UINT8.max_finite


class TestLookup:
    def test_by_name(self):
        assert dtype_by_name("fp10") is FP10
        assert dtype_by_name("FP8") is FP8

    def test_unknown(self):
        with pytest.raises(KeyError):
            dtype_by_name("fp12")

    def test_dpr_formats_registry(self):
        assert set(DPR_FORMATS) == {"fp16", "fp10", "fp8"}

    def test_is_minifloat(self):
        assert FP16.is_minifloat and FP10.is_minifloat and FP8.is_minifloat
        assert not FP32.is_minifloat
        assert not UINT8.is_minifloat
