"""Tests for the one-call experiment drivers."""

import pytest

from repro import experiments


class TestStaticDrivers:
    def test_figure8(self):
        rows = experiments.figure8_mfr(models=["alexnet"], batch_size=8)
        (row,) = rows
        assert row["network"] == "alexnet"
        assert row["mfr_full"] > row["mfr_lossless"] > 1.0
        assert row["dpr_format"] == "fp8"

    def test_figure3(self):
        out = experiments.figure3_stash_classes(models=["vgg16"],
                                                batch_size=8)
        fractions = out["vgg16"]
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["relu_pool"] > 0.3

    def test_figure9(self):
        rows = experiments.figure9_overheads(models=["overfeat"],
                                             batch_size=16)
        (row,) = rows
        assert row["naive_overhead"] > row["vdnn_overhead"] >= 0
        assert row["energy_ratio_vdnn_over_gist"] > 1.0

    def test_figure17(self):
        rows = experiments.figure17_dynamic(models=["nin"], batch_size=8)
        (row,) = rows
        assert (row["dynamic"] < row["dynamic_lossless"]
                < row["dynamic_full"] <= row["dynamic_optimized"])

    def test_figure1_breakdown(self):
        out = experiments.baseline_memory_breakdown(models=["alexnet"],
                                                    batch_size=8)
        assert out["alexnet"]["weights"] > 0
        assert out["alexnet"]["stashed_feature_maps"] > 0


class TestTrainingDrivers:
    def test_figure14_series_shapes(self):
        series = experiments.figure14_ssdc_series(epochs=1, sample_every=8)
        assert series
        lengths = {len(v) for v in series.values()}
        assert len(lengths) == 1  # every layer sampled at the same steps
        for values in series.values():
            assert all(v > 0 for v in values)

    def test_figure16_small(self):
        from repro.perf import DeviceSpec

        # Not exercised at full 12 GB scale here (the bench does that);
        # just verify the driver contract on a small device.
        dev = DeviceSpec("small", 6e12, 300e9, 128 * 1024**2, 10e9)
        rows = experiments.figure16_speedups(depths=(56,), device=dev)
        (row,) = rows
        assert row["gist_batch"] > row["baseline_batch"]
        assert row["speedup"] > 1.0
