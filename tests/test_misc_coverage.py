"""Edge-path tests that round out branch coverage across modules."""

import numpy as np
import pytest

from repro.core import GistConfig
from repro.encodings.base import Encoding
from repro.models import tiny_cnn
from repro.train import GistPolicy, GraphExecutor, make_synthetic

from tests.conftest import run_layer


class TestEncodingBase:
    def test_measure_bytes_default_unimplemented(self):
        class Half(Encoding):
            name = "half"

            def encoded_bytes(self, num_elements, **ctx):
                return num_elements * 2

            def encode(self, x):
                return x

            def decode(self, encoded):
                return encoded

        with pytest.raises(NotImplementedError):
            Half().measure_bytes(np.zeros(4))

    def test_identity_measures_fp32(self):
        from repro.encodings import IdentityEncoding

        enc = IdentityEncoding()
        x = np.zeros((3, 5), np.float32)
        assert enc.measure_bytes(enc.encode(x)) == 60
        assert enc.encoded_bytes(15) == 60


class TestDropoutEdgeCases:
    def test_p_zero_is_identity_with_trivial_mask(self, rng):
        from repro.layers import Dropout

        layer = Dropout(0.0)
        x = rng.normal(0, 1, (4, 4)).astype(np.float32)
        y, ctx = run_layer(layer, [x])
        np.testing.assert_array_equal(y, x)
        dy = rng.normal(0, 1, (4, 4)).astype(np.float32)
        (dx,), _ = layer.backward(dy, {}, ctx)
        np.testing.assert_array_equal(dx, dy)

    def test_eval_mode_backward(self, rng):
        from repro.layers import Dropout

        layer = Dropout(0.5, seed=1)
        x = rng.normal(0, 1, (4, 4)).astype(np.float32)
        _, ctx = run_layer(layer, [x], train=False)
        dy = rng.normal(0, 1, (4, 4)).astype(np.float32)
        (dx,), _ = layer.backward(dy, {}, ctx)
        np.testing.assert_array_equal(dx, dy)

    def test_reset_rng_reproduces_masks(self, rng):
        from repro.layers import Dropout

        layer = Dropout(0.5, seed=9)
        x = np.ones((8, 8), np.float32)
        y1, _ = run_layer(layer, [x])
        layer.reset_rng()
        y2, _ = run_layer(layer, [x])
        np.testing.assert_array_equal(y1, y2)


class TestExecutorEdgeCases:
    def test_stashed_value_unknown_node(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(16, 4, 8, seed=0)
        ex = GraphExecutor(g)
        ex.forward(train.images[:8], train.labels[:8])
        conv1 = g.node_by_name("conv1")
        with pytest.raises(KeyError):
            ex.stashed_value(conv1.node_id)  # conv output is not stashed

    def test_input_layer_cannot_execute(self):
        from repro.layers import InputLayer

        with pytest.raises(RuntimeError):
            InputLayer((1, 3, 4, 4)).forward([], {}, None)

    def test_layer_without_backward(self):
        from repro.layers import InputLayer

        with pytest.raises(NotImplementedError):
            InputLayer((1, 3, 4, 4)).backward(np.zeros(1), {}, None)


class TestGistPolicyArms:
    def test_binarize_off_routes_relu_pool_to_dpr(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        policy = GistPolicy(g, GistConfig(binarize=False, dpr_format="fp16"))
        relu1 = g.node_by_name("relu1")
        assert policy.encoding_for(g, relu1.node_id).name == "dpr-fp16"

    def test_ssdc_off_routes_relu_conv_to_dpr(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        policy = GistPolicy(g, GistConfig(ssdc=False, dpr_format="fp10"))
        relu2 = g.node_by_name("relu2")
        assert policy.encoding_for(g, relu2.node_id).name == "dpr-fp10"

    def test_all_off_is_identity(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        policy = GistPolicy(g, GistConfig.disabled())
        for node in g.nodes:
            assert policy.encoding_for(g, node.node_id).name == "identity"


class TestCLIUniformTraining:
    def test_uniform_policy_via_cli(self, capsys):
        from repro.cli import main

        assert main(["train", "--policy", "uniform-fp16",
                     "--epochs", "1"]) == 0
        assert "epoch 1" in capsys.readouterr().out
