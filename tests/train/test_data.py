"""Regression tests for synthetic-dataset determinism and durability.

Two seed-determinism bugs are pinned here:

* the test split used to be drawn from the same RNG stream *after* the
  train split, so changing ``num_samples`` silently changed the test
  data for the same seed;
* ``Dataset.num_classes`` used to be inferred as ``labels.max() + 1``,
  underreporting whenever a split happened to miss the top class.
"""

import numpy as np
import pytest

from repro.train import Dataset, make_synthetic


class TestSplitStreamIndependence:
    def test_test_split_independent_of_train_consumption(self):
        # Regression: the test split used to be drawn from the tail of
        # the train stream, so any change in how much the train split
        # consumed changed the evaluation data.  128 and 131 training
        # samples both yield a 32-sample test split; same seed must mean
        # the same test data.
        _, test_a = make_synthetic(num_samples=128, num_classes=4,
                                   image_size=8, seed=11)
        _, test_b = make_synthetic(num_samples=131, num_classes=4,
                                   image_size=8, seed=11)
        np.testing.assert_array_equal(test_a.labels, test_b.labels)
        np.testing.assert_array_equal(test_a.images, test_b.images)

    def test_same_seed_bitwise_reproducible(self):
        a_train, a_test = make_synthetic(64, 4, 8, seed=5)
        b_train, b_test = make_synthetic(64, 4, 8, seed=5)
        np.testing.assert_array_equal(a_train.images, b_train.images)
        np.testing.assert_array_equal(a_test.images, b_test.images)

    def test_different_seeds_differ(self):
        a_train, _ = make_synthetic(64, 4, 8, seed=5)
        b_train, _ = make_synthetic(64, 4, 8, seed=6)
        assert not np.array_equal(a_train.images, b_train.images)

    def test_train_and_test_streams_distinct(self):
        train, test = make_synthetic(num_samples=64, num_classes=4,
                                     image_size=8, seed=0)
        assert not np.array_equal(train.images[: test.num_samples],
                                  test.images)


class TestClassCoverage:
    @pytest.mark.parametrize("num_samples,num_classes,seed", [
        (4, 4, 0),      # minimum size: exactly one sample per class
        (10, 10, 3),    # test split is the num_classes floor
        (40, 8, 1),
        (100, 5, 7),
    ])
    def test_every_class_in_both_splits(self, num_samples, num_classes,
                                        seed):
        train, test = make_synthetic(num_samples=num_samples,
                                     num_classes=num_classes,
                                     image_size=8, seed=seed)
        assert set(np.unique(train.labels)) == set(range(num_classes))
        assert set(np.unique(test.labels)) == set(range(num_classes))

    def test_splits_report_requested_num_classes(self):
        train, test = make_synthetic(num_samples=32, num_classes=6,
                                     image_size=8, seed=0)
        assert train.num_classes == 6
        assert test.num_classes == 6


class TestDatasetNumClasses:
    def test_explicit_num_classes_survives_missing_top_class(self):
        # Regression: a split missing class 2 used to report 2 classes.
        images = np.zeros((3, 1, 2, 2), np.float32)
        labels = np.array([0, 1, 0], np.int64)
        dataset = Dataset(images, labels, num_classes=3)
        assert dataset.num_classes == 3

    def test_inferred_fallback_for_hand_built_datasets(self):
        images = np.zeros((4, 1, 2, 2), np.float32)
        labels = np.array([0, 1, 2, 1], np.int64)
        assert Dataset(images, labels).num_classes == 3

    def test_out_of_range_label_rejected(self):
        images = np.zeros((2, 1, 2, 2), np.float32)
        labels = np.array([0, 5], np.int64)
        with pytest.raises(ValueError, match="out of range"):
            Dataset(images, labels, num_classes=3)

    def test_empty_dataset(self):
        images = np.zeros((0, 1, 2, 2), np.float32)
        labels = np.zeros((0,), np.int64)
        assert Dataset(images, labels).num_classes == 0
