"""Execution tests for hybrid plans: recompute/swap must be bit-exact.

The planner's lossless claim is only meaningful if the executor's replay
machinery (recompute chains, host-swap round trips) reproduces the exact
FP32 values the baseline would have stashed.  These tests train the same
model under each strategy arm and demand bit-identical losses and
gradients, then pin the property through the diagnostics golden-digest
harness.

Every run builds a fresh graph: dropout layers carry their own stateful
RNG, so two runs only see the same masks when each starts from a freshly
built model.
"""

import numpy as np
import pytest

from repro.core.policy import (
    HybridPolicy,
    STRATEGY_HYBRID,
    STRATEGY_RECOMPUTE,
    STRATEGY_SWAP,
)
from repro.diagnostics import capture_digest
from repro.memory import CHOICE_SWAP, build_hybrid_plan
from repro.models import scaled_vgg
from repro.train import (
    BaselinePolicy,
    GraphExecutor,
    HybridExecutionPolicy,
    SGD,
    make_synthetic,
)

BATCH = 8
STEPS = 2


def fresh_graph():
    return scaled_vgg(batch_size=BATCH)


@pytest.fixture(scope="module")
def batches():
    train, _ = make_synthetic(BATCH * STEPS, 10, 32, seed=7)
    return [
        (train.images[i * BATCH:(i + 1) * BATCH],
         train.labels[i * BATCH:(i + 1) * BATCH])
        for i in range(STEPS)
    ]


def run_steps(policy_for, batches):
    """Build a fresh graph, run STEPS SGD steps; returns (losses, grads)."""
    graph = fresh_graph()
    ex = GraphExecutor(graph, policy_for(graph), seed=0)
    opt = SGD(lr=0.01)
    params = ex.parameters()
    losses, grads = [], []
    for images, labels in batches:
        losses.append(ex.forward(images, labels))
        g = ex.backward()
        grads.append({k: v.copy() for k, v in g.items()})
        opt.step(params, g)
    return losses, grads


def hybrid_policy_for(graph, strategy):
    plan = build_hybrid_plan(
        graph, HybridPolicy(strategy=strategy, cost_budget_frac=0.3)
    )
    return plan, HybridExecutionPolicy(plan)


class TestBitIdentity:
    @pytest.mark.parametrize(
        "strategy", [STRATEGY_RECOMPUTE, STRATEGY_SWAP, STRATEGY_HYBRID]
    )
    def test_lossless_arm_matches_baseline(self, batches, strategy):
        base_losses, base_grads = run_steps(
            lambda graph: BaselinePolicy(), batches
        )
        plans = []

        def policy_for(graph):
            plan, policy = hybrid_policy_for(graph, strategy)
            plans.append(plan)
            return policy

        losses, grads = run_steps(policy_for, batches)
        assert plans[0].lossless
        assert losses == base_losses
        for step, (got, want) in enumerate(zip(grads, base_grads)):
            assert set(got) == set(want)
            for name in want:
                np.testing.assert_array_equal(
                    got[name], want[name],
                    err_msg=f"{strategy} step {step} grad {name!r} differs",
                )

    def test_recompute_arm_actually_recomputes(self, batches):
        graph = fresh_graph()
        plan, policy = hybrid_policy_for(graph, STRATEGY_RECOMPUTE)
        directives = plan.recompute_directives()
        assert directives  # otherwise the bit-identity test proves nothing
        ex = GraphExecutor(graph, policy, seed=0)
        images, labels = batches[0]
        ex.forward(images, labels)
        # Recompute-chosen maps are dropped, yet stashed_value rebuilds them.
        for nid in directives:
            assert nid not in ex.stashed_node_ids()
            rebuilt = ex.stashed_value(nid)
            assert rebuilt.shape == tuple(graph.node(nid).output_shape)
        ex.backward()  # the replay path must survive a full backward pass

    def test_swap_arm_reports_zero_device_stash(self, batches):
        graph = fresh_graph()
        plan, policy = hybrid_policy_for(graph, STRATEGY_SWAP)
        swapped = [d for d in plan.decisions.values()
                   if d.choice == CHOICE_SWAP]
        assert swapped
        ex = GraphExecutor(graph, policy, seed=0)
        images, labels = batches[0]
        ex.forward(images, labels)
        measured = ex.stash_bytes()
        for decision in swapped:
            assert measured[decision.node_name] == 0

    def test_describe_names_the_strategy(self):
        graph = fresh_graph()
        _, policy = hybrid_policy_for(graph, STRATEGY_RECOMPUTE)
        assert policy.describe() == "hybrid-recompute"
        _, policy = hybrid_policy_for(graph, STRATEGY_HYBRID)
        assert policy.describe() == "hybrid"


class TestGoldenDigest:
    def test_hybrid_digest_matches_baseline(self, batches):
        """Pin bit-identity through the golden-digest harness: per-step
        loss and gradient hashes must match the baseline exactly."""
        base = capture_digest(
            GraphExecutor(fresh_graph(), BaselinePolicy(), seed=0),
            batches, optimizer=SGD(lr=0.01), policy="baseline",
        )
        graph = fresh_graph()
        plan, policy = hybrid_policy_for(graph, STRATEGY_HYBRID)
        hybrid = capture_digest(
            GraphExecutor(graph, policy, seed=0),
            batches, optimizer=SGD(lr=0.01),
        )
        assert hybrid.policy == "hybrid"
        assert len(hybrid.steps) == len(base.steps) == STEPS
        for step, (got, want) in enumerate(zip(hybrid.steps, base.steps)):
            assert got.loss_hash == want.loss_hash, f"step {step} loss"
            assert got.grads_hash == want.grads_hash, f"step {step} grads"
