"""Regression: executors must not inherit advanced dropout RNG state.

Layers live on the graph, so two executors built over the same graph
used to *share* one dropout generator: whoever ran first advanced the
stream, and the second executor silently drew different masks than a
fresh process would — same graph, same seeds, different bits.  The fix
is ``Layer.reset_state``: ``GraphExecutor.__init__`` rewinds every
layer's stream to its construction seed, and
``GraphExecutor.reset_layer_state(seed_sequence)`` re-keys the streams
from externally split :class:`numpy.random.SeedSequence` children (how
replica workers decorrelate masks across shards while staying exactly
reproducible).
"""

import numpy as np

from repro.layers import Dropout
from repro.models import build_model
from repro.train.executor import GraphExecutor


def _fixed_batch(graph, seed=0):
    shape = graph.node(graph.input_id).output_shape
    rng = np.random.default_rng(seed)
    x = rng.normal(0, 1, shape).astype(np.float32)
    y = rng.integers(0, shape[0] + 2, shape[0]).astype(np.int64)
    return x, y


def test_second_executor_on_same_graph_matches_the_first():
    # Pre-fix this failed: the first executor's forward advanced the
    # shared dropout generator, so the second one drew different masks.
    graph = build_model("scaled_vgg", batch_size=2, num_classes=4, width=8,
                        image_size=32)
    x, y = _fixed_batch(graph)
    loss_first = GraphExecutor(graph, seed=0).forward(x, y, train=True)
    loss_second = GraphExecutor(graph, seed=0).forward(x, y, train=True)
    assert loss_first == loss_second


def test_dropout_actually_draws_fresh_masks_within_one_executor():
    graph = build_model("scaled_vgg", batch_size=2, num_classes=4, width=8,
                        image_size=32)
    x, y = _fixed_batch(graph)
    executor = GraphExecutor(graph, seed=0)
    first = executor.forward(x, y, train=True)
    second = executor.forward(x, y, train=True)
    assert first != second, "dropout mask stream looks frozen"


def test_seed_sequence_rekeying_is_reproducible_and_distinct():
    graph = build_model("scaled_vgg", batch_size=2, num_classes=4, width=8,
                        image_size=32)
    x, y = _fixed_batch(graph)
    executor = GraphExecutor(graph, seed=0)

    def loss_with(entropy):
        executor.reset_layer_state(np.random.SeedSequence(entropy))
        return executor.forward(x, y, train=True)

    assert loss_with([7, 0]) == loss_with([7, 0])
    assert loss_with([7, 0]) != loss_with([7, 1])


def test_dropout_reset_state_rewinds_to_construction_seed():
    layer = Dropout(p=0.5, seed=123)
    x = np.ones((4, 64), dtype=np.float32)
    first = layer.forward([x], {}, None, train=True)
    layer.reset_state()
    again = layer.forward([x], {}, None, train=True)
    assert first.tobytes() == again.tobytes()

    # An explicit generator is adopted as-is.
    layer.reset_state(np.random.default_rng(9))
    adopted = layer.forward([x], {}, None, train=True)
    expected = Dropout(p=0.5, seed=0)
    expected.reset_state(np.random.default_rng(9))
    assert adopted.tobytes() == \
        expected.forward([x], {}, None, train=True).tobytes()


def test_base_layer_reset_state_is_a_no_op():
    from repro.layers import ReLU

    layer = ReLU()
    layer.reset_state()  # must not raise on stateless layers
    layer.reset_state(np.random.default_rng(0))
