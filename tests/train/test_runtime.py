"""Tests for the training runtime: data, optimizer, executor, policies."""

import numpy as np
import pytest

from repro.core import GistConfig
from repro.dtypes import FP8, FP16
from repro.encodings.floatsim import quantize
from repro.models import scaled_vgg, tiny_cnn
from repro.train import (
    AllFP16Policy,
    BaselinePolicy,
    Dataset,
    GistPolicy,
    GraphExecutor,
    SGD,
    Trainer,
    UniformReductionPolicy,
    accuracy,
    accuracy_loss,
    make_synthetic,
    minibatches,
)


class TestData:
    def test_deterministic(self):
        a, _ = make_synthetic(64, 4, 8, seed=5)
        b, _ = make_synthetic(64, 4, 8, seed=5)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seed_differs(self):
        a, _ = make_synthetic(64, 4, 8, seed=5)
        b, _ = make_synthetic(64, 4, 8, seed=6)
        assert not np.array_equal(a.images, b.images)

    def test_shapes_and_labels(self):
        train, test = make_synthetic(100, 5, 12, channels=3, seed=0)
        assert train.images.shape == (100, 3, 12, 12)
        assert train.labels.max() < 5
        assert test.num_samples == 25

    def test_minibatches_cover_epoch(self):
        data, _ = make_synthetic(64, 4, 8, seed=0)
        rng = np.random.default_rng(0)
        batches = list(minibatches(data, 16, rng))
        assert len(batches) == 4
        assert all(x.shape[0] == 16 for x, _ in batches)

    def test_minibatches_drop_last(self):
        data, _ = make_synthetic(60, 4, 8, seed=0)
        rng = np.random.default_rng(0)
        assert len(list(minibatches(data, 16, rng))) == 3

    def test_dataset_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 1, 2, 2), np.float32), np.zeros(4, np.int64))

    def test_batch_size_validation(self):
        data, _ = make_synthetic(16, 2, 8, seed=0)
        with pytest.raises(ValueError):
            list(minibatches(data, 0, np.random.default_rng(0)))


class TestSGD:
    def test_plain_sgd_step(self):
        opt = SGD(lr=0.1, momentum=0.0)
        params = {"w": np.array([1.0, 2.0], np.float32)}
        opt.step(params, {"w": np.array([1.0, 1.0], np.float32)})
        np.testing.assert_allclose(params["w"], [0.9, 1.9])

    def test_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.5)
        params = {"w": np.zeros(1, np.float32)}
        g = {"w": np.ones(1, np.float32)}
        opt.step(params, g)   # v=1, w=-0.1
        opt.step(params, g)   # v=1.5, w=-0.25
        np.testing.assert_allclose(params["w"], [-0.25])

    def test_updates_in_place(self):
        opt = SGD(lr=0.1)
        w = np.ones(2, np.float32)
        params = {"w": w}
        opt.step(params, {"w": np.ones(2, np.float32)})
        assert params["w"] is w  # same buffer

    def test_weight_decay(self):
        opt = SGD(lr=0.1, momentum=0.0, weight_decay=0.1)
        params = {"w": np.array([1.0], np.float32)}
        opt.step(params, {"w": np.zeros(1, np.float32)})
        np.testing.assert_allclose(params["w"], [0.99])

    def test_unknown_param_rejected(self):
        with pytest.raises(KeyError):
            SGD().step({}, {"w": np.zeros(1)})

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0)
        with pytest.raises(ValueError):
            SGD(momentum=1.5)


class TestExecutor:
    def test_loss_decreases(self):
        g = tiny_cnn(batch_size=8, num_classes=3, image_size=8)
        train, _ = make_synthetic(64, 3, 8, seed=2)
        ex = GraphExecutor(g, seed=0)
        opt = SGD(lr=0.05)
        params = ex.parameters()
        first = last = None
        for _ in range(10):
            loss = ex.forward(train.images[:8], train.labels[:8])
            grads = ex.backward()
            opt.step(params, grads)
            first = first if first is not None else loss
            last = loss
        assert last < first

    def test_shape_mismatch_rejected(self):
        g = tiny_cnn(batch_size=8)
        ex = GraphExecutor(g)
        with pytest.raises(ValueError):
            ex.forward(np.zeros((4, 3, 8, 8), np.float32), np.zeros(4, np.int64))

    def test_backward_before_forward_rejected(self):
        ex = GraphExecutor(tiny_cnn(batch_size=8))
        with pytest.raises(RuntimeError):
            ex.backward()

    def test_gradients_cover_all_params(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        ex = GraphExecutor(g)
        ex.forward(train.images[:8], train.labels[:8])
        grads = ex.backward()
        assert set(grads) == set(ex.parameters())

    def test_non_loss_output_rejected(self):
        from repro.graph import GraphBuilder
        from repro.layers import ReLU

        b = GraphBuilder("g", (2, 3, 4, 4))
        b.add(ReLU(), b.input)
        with pytest.raises(ValueError):
            GraphExecutor(b.build())

    def test_predict_returns_logits(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        logits = GraphExecutor(g).predict(train.images[:8])
        assert logits.shape == (8, 4)

    def test_sparsity_tracked_for_relus(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        ex = GraphExecutor(g)
        ex.forward(train.images[:8], train.labels[:8])
        assert "relu1" in ex.last_sparsity
        assert 0.0 <= ex.last_sparsity["relu1"] <= 1.0

    def test_stash_bytes_measured(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        ex = GraphExecutor(g, GistPolicy(g, GistConfig(dpr_format="fp8")))
        ex.forward(train.images[:8], train.labels[:8])
        nbytes = ex.stash_bytes()
        relu1 = g.node_by_name("relu1")
        full = 4
        for d in relu1.output_shape:
            full *= d
        assert nbytes["relu1"] == full // 32  # binarized


class TestPolicyEquivalence:
    """Lossless Gist must produce bit-identical gradients to the baseline."""

    def test_lossless_gist_gradients_identical(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        images, labels = train.images[:8], train.labels[:8]

        base = GraphExecutor(g, BaselinePolicy(), seed=0)
        base.forward(images, labels)
        base_grads = base.backward()

        gist = GraphExecutor(g, GistPolicy(g, GistConfig.lossless()), seed=0)
        gist.forward(images, labels)
        gist_grads = gist.backward()

        assert set(base_grads) == set(gist_grads)
        for name in base_grads:
            np.testing.assert_array_equal(
                base_grads[name], gist_grads[name],
                err_msg=f"lossless Gist changed gradient {name!r}",
            )

    def test_dpr_gist_gradients_close_but_not_identical(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        images, labels = train.images[:8], train.labels[:8]

        base = GraphExecutor(g, BaselinePolicy(), seed=0)
        base.forward(images, labels)
        base_grads = base.backward()

        lossy = GraphExecutor(
            g, GistPolicy(g, GistConfig(dpr_format="fp8")), seed=0
        )
        lossy.forward(images, labels)
        lossy_grads = lossy.backward()

        some_differ = False
        for name in base_grads:
            scale = np.abs(base_grads[name]).max() + 1e-8
            assert np.abs(lossy_grads[name] - base_grads[name]).max() < 0.3 * scale
            if not np.array_equal(lossy_grads[name], base_grads[name]):
                some_differ = True
        assert some_differ  # FP8 must actually inject error somewhere

    def test_dpr_forward_loss_unchanged(self):
        """DPR is *delayed*: the forward pass must be exactly FP32."""
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        images, labels = train.images[:8], train.labels[:8]
        base_loss = GraphExecutor(g, BaselinePolicy(), seed=0).forward(
            images, labels
        )
        dpr_loss = GraphExecutor(
            g, GistPolicy(g, GistConfig(dpr_format="fp8")), seed=0
        ).forward(images, labels)
        assert base_loss == dpr_loss

    def test_uniform_policy_changes_forward(self):
        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        images, labels = train.images[:8], train.labels[:8]
        base_loss = GraphExecutor(g, BaselinePolicy(), seed=0).forward(
            images, labels
        )
        uni_loss = GraphExecutor(
            g, UniformReductionPolicy(FP8), seed=0
        ).forward(images, labels)
        assert base_loss != uni_loss

    def test_allfp16_policy_is_fp16(self):
        policy = AllFP16Policy()
        assert policy.dtype is FP16
        node = tiny_cnn().node_by_name("conv1")
        y = np.array([1.0 + 2**-12], dtype=np.float32)
        np.testing.assert_array_equal(
            policy.transform_forward(y, node), quantize(y, FP16)
        )


class TestTrainer:
    def test_baseline_learns(self):
        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(256, 4, 8, seed=1)
        result = Trainer(g, seed=0).train(train, test, epochs=3)
        assert result.final_accuracy > 0.8
        assert len(result.epoch_losses) == 3

    def test_deterministic_given_seed(self):
        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(128, 4, 8, seed=1)
        r1 = Trainer(g, seed=3).train(train, test, epochs=2)
        r2 = Trainer(g, seed=3).train(train, test, epochs=2)
        assert r1.epoch_losses == r2.epoch_losses

    def test_sparsity_sampling(self):
        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(128, 4, 8, seed=1)
        result = Trainer(g, seed=0).train(train, test, epochs=1,
                                          sparsity_every=2)
        assert result.sparsity_samples
        sample = result.sparsity_samples[0]
        assert "relu1" in sample.sparsity

    def test_accuracy_loss_curve(self):
        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(128, 4, 8, seed=1)
        result = Trainer(g, seed=0).train(train, test, epochs=2)
        for acc, loss in zip(result.test_accuracy, result.accuracy_loss_curve):
            assert loss == pytest.approx(1.0 - acc)


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1, 0], [0, 1], [2, 1]], np.float32)
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_accuracy_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 2)), np.zeros(3, np.int64))

    def test_accuracy_loss(self):
        assert accuracy_loss(0.78) == pytest.approx(0.22)
        with pytest.raises(ValueError):
            accuracy_loss(1.5)

    def test_accuracy_loss_clamps_float_artifacts(self):
        # mean() over per-batch accuracies can come out one ulp past the
        # boundary; that is a rounding artifact, not a caller bug.
        import math

        assert accuracy_loss(1.0 + math.ulp(1.0)) == 0.0
        assert accuracy_loss(-math.ulp(1.0)) == 1.0
        with pytest.raises(ValueError):
            accuracy_loss(1.0 + 3 * math.ulp(1.0))
        with pytest.raises(ValueError):
            accuracy_loss(-3 * math.ulp(1.0))


class TestGradientOnlyPolicy:
    def test_forward_untouched(self):
        from repro.train import GradientOnlyReductionPolicy

        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        images, labels = train.images[:8], train.labels[:8]
        base = GraphExecutor(g, BaselinePolicy(), seed=0).forward(images, labels)
        grad_only = GraphExecutor(
            g, GradientOnlyReductionPolicy(FP8), seed=0
        ).forward(images, labels)
        assert base == grad_only

    def test_gradients_are_quantized(self):
        from repro.train import GradientOnlyReductionPolicy

        g = tiny_cnn(batch_size=8, num_classes=4)
        train, _ = make_synthetic(32, 4, 8, seed=2)
        images, labels = train.images[:8], train.labels[:8]

        base_ex = GraphExecutor(g, BaselinePolicy(), seed=0)
        base_ex.forward(images, labels)
        base = base_ex.backward()

        go_ex = GraphExecutor(g, GradientOnlyReductionPolicy(FP8), seed=0)
        go_ex.forward(images, labels)
        reduced = go_ex.backward()

        some_differ = any(
            not np.array_equal(base[k], reduced[k]) for k in base
        )
        assert some_differ

    def test_training_survives_grad_fp16(self):
        """The paper's Section III-B claim: gradient-map-only reduction
        does not affect accuracy."""
        from repro.train import GradientOnlyReductionPolicy

        g = tiny_cnn(batch_size=16, num_classes=4, image_size=8)
        train, test = make_synthetic(256, 4, 8, seed=1)
        result = Trainer(g, GradientOnlyReductionPolicy(FP16), seed=0).train(
            train, test, epochs=3
        )
        assert result.final_accuracy > 0.8
