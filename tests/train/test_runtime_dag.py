"""Runtime tests on DAG-shaped graphs and encoding plumbing edge cases."""

import numpy as np
import pytest

from repro.core import GistConfig
from repro.graph import GraphBuilder
from repro.layers import (
    Add,
    BatchNorm2D,
    Concat,
    Conv2D,
    Dense,
    MaxPool2D,
    ReLU,
    SoftmaxCrossEntropy,
)
from repro.models import resnet_cifar
from repro.train import (
    BaselinePolicy,
    GistPolicy,
    GraphExecutor,
    SGD,
    Trainer,
    make_synthetic,
)


def inception_like():
    b = GraphBuilder("mini_inception", (8, 3, 8, 8))
    b1 = b.add(Conv2D(4, 1), b.input, name="b1_conv")
    b1 = b.add(ReLU(), b1, name="b1_relu")
    b3 = b.add(Conv2D(4, 3, pad=1), b.input, name="b3_conv")
    b3 = b.add(ReLU(), b3, name="b3_relu")
    cat = b.add(Concat(), [b1, b3], name="concat")
    x = b.add(MaxPool2D(2, 2), cat, name="pool")
    x = b.add(Dense(4), x, name="fc")
    x = b.add(SoftmaxCrossEntropy(), x, name="loss")
    b.mark_output(x)
    return b.build()


class TestDAGRuntime:
    def test_fan_out_gradient_accumulation(self):
        """A tensor consumed by two branches must receive summed grads."""
        b = GraphBuilder("fanout", (4, 2, 6, 6))
        stem = b.add(Conv2D(3, 3, pad=1), b.input, name="stem")
        left = b.add(Conv2D(3, 3, pad=1), stem, name="left")
        right = b.add(Conv2D(3, 3, pad=1), stem, name="right")
        merged = b.add(Add(), [left, right], name="add")
        x = b.add(Dense(2), merged, name="fc")
        x = b.add(SoftmaxCrossEntropy(), x, name="loss")
        b.mark_output(x)
        g = b.build()

        rng = np.random.default_rng(0)
        images = rng.normal(0, 1, (4, 2, 6, 6)).astype(np.float32)
        labels = rng.integers(0, 2, 4)
        ex = GraphExecutor(g, seed=0)
        ex.forward(images, labels)
        grads = ex.backward()
        # stem's weight gradient reflects both branches: zeroing one
        # branch's contribution must change it.
        assert "stem.w" in grads
        assert np.abs(grads["stem.w"]).sum() > 0

    def test_inception_like_gist_lossless_identical(self):
        g = inception_like()
        rng = np.random.default_rng(1)
        images = rng.normal(0, 1, (8, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 4, 8)

        base = GraphExecutor(g, BaselinePolicy(), seed=0)
        base.forward(images, labels)
        bg = base.backward()
        gist = GraphExecutor(g, GistPolicy(g, GistConfig.lossless()), seed=0)
        gist.forward(images, labels)
        gg = gist.backward()
        for k in bg:
            np.testing.assert_array_equal(bg[k], gg[k], err_msg=k)

    def test_resnet_gist_trains(self):
        g = resnet_cifar(8, batch_size=8, num_classes=4, image_size=8)
        train, test = make_synthetic(64, 4, 8, seed=4)
        policy = GistPolicy(g, GistConfig(dpr_format="fp16"))
        result = Trainer(g, policy, SGD(lr=0.05), seed=0).train(
            train, test, epochs=3
        )
        assert result.final_accuracy > 0.5

    def test_padded_maxpool_binarize_roundtrip(self):
        """Binarize + padded 3x3/2 pool — the AlexNet/GoogLeNet pattern."""
        b = GraphBuilder("padpool", (4, 2, 7, 7))
        x = b.add(Conv2D(3, 3, pad=1), b.input, name="conv")
        x = b.add(ReLU(), x, name="relu")
        x = b.add(MaxPool2D(3, 2, pad=1), x, name="pool")
        x = b.add(Dense(2), x, name="fc")
        x = b.add(SoftmaxCrossEntropy(), x, name="loss")
        b.mark_output(x)
        g = b.build()

        rng = np.random.default_rng(2)
        images = rng.normal(0, 1, (4, 2, 7, 7)).astype(np.float32)
        labels = rng.integers(0, 2, 4)
        base = GraphExecutor(g, BaselinePolicy(), seed=0)
        base.forward(images, labels)
        bg = base.backward()
        gist = GraphExecutor(g, GistPolicy(g, GistConfig.lossless()), seed=0)
        gist.forward(images, labels)
        gg = gist.backward()
        for k in bg:
            np.testing.assert_array_equal(bg[k], gg[k], err_msg=k)


class TestConfigPlumbing:
    def test_ssdc_cols_reaches_runtime(self):
        g = inception_like()
        policy = GistPolicy(g, GistConfig.lossless(ssdc_cols=64))
        for encoding in policy._table.values():
            if encoding.name.startswith("ssdc"):
                assert encoding.cols == 64

    def test_dpr_over_ssdc_value_dtype(self):
        g = inception_like()
        with_dpr = GistPolicy(g, GistConfig(dpr_format="fp8"))
        assert with_dpr._ssdc.value_dtype is not None
        without = GistPolicy(g, GistConfig(dpr_format="fp8",
                                           dpr_over_ssdc=False))
        assert without._ssdc.value_dtype is None

    def test_truncate_rounding_reaches_dpr(self):
        g = inception_like()
        policy = GistPolicy(g, GistConfig(rounding="truncate"))
        assert policy._dpr.rounding == "truncate"


class TestDivergenceHandling:
    def test_trainer_stops_on_nonfinite_loss(self, monkeypatch):
        g = inception_like()
        train, test = make_synthetic(64, 4, 8, seed=0)
        trainer = Trainer(g, seed=0)

        original = trainer.executor.forward

        def exploding(images, labels, train=True):
            original(images, labels, train)
            return float("nan")

        monkeypatch.setattr(trainer.executor, "forward", exploding)
        result = trainer.train(train, test, epochs=3)
        # Halted after the first minibatch of the first epoch.
        assert len(result.epoch_losses) == 1
        assert result.epoch_losses[0] == float("inf")
