"""Pinned-seed fuzzing smoke batch (tier-1; select alone with -m fuzz).

A small deterministic slice of the differential fuzzer runs on every test
invocation, so an allocator/planner/codec regression that only shows on
machine-generated graphs is caught before it lands.  The full battery is
``repro fuzz --seeds N``.
"""

import pytest

from repro.cli import main
from repro.verify import run_fuzz, verify_seed

#: Deterministic smoke slice: ~25 graphs x 3 Gist configs in a few
#: seconds (the full 500-seed battery runs in ~11 s).
SMOKE_SEEDS = 25


@pytest.mark.fuzz
class TestFuzzSmoke:
    def test_smoke_batch_clean(self):
        report = run_fuzz(SMOKE_SEEDS, stop_on_first=False)
        assert report.graphs_verified == SMOKE_SEEDS
        assert report.ok, "\n".join(str(v) for v in report.violations)

    def test_single_seed_battery_includes_encodings(self):
        assert verify_seed(0) == []

    def test_cli_clean_run(self, capsys):
        assert main(["fuzz", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "graphs verified: 3" in out
        assert "violations:      none" in out

    def test_cli_strict_finds_and_minimizes_counterexample(self, capsys):
        from tests.verify.test_fuzzer import COUNTEREXAMPLE_SEED

        assert main(["fuzz", "--seeds", "1",
                     "--start-seed", str(COUNTEREXAMPLE_SEED),
                     "--strict"]) == 1
        out = capsys.readouterr().out
        assert "policy-bounds" in out
        assert "minimized repro" in out
        assert f"--start-seed {COUNTEREXAMPLE_SEED} --strict" in out
