"""Tests for the graph fuzzer: determinism, validity, and the pinned
greedy-vs-first-fit counterexample the fuzzer discovered."""

import numpy as np
import pytest

from repro.graph.schedule import TrainingSchedule
from repro.memory.allocator import (
    POLICY_FIRST_FIT,
    POLICY_GREEDY_SIZE,
    StaticAllocator,
)
from repro.memory.planner import build_memory_plan
from repro.verify import (
    DEFAULT_MAX_OPS,
    GraphFuzzer,
    check_policy_bounds,
    fuzz_graphs,
    verify_graph,
)

#: Fuzzer-discovered seed where the CNTK size-sorted greedy heuristic
#: allocates MORE than insertion-order first-fit (a fan-out graph whose
#: roughly birth-sorted table makes first-fit near-optimal left-edge
#: packing).  Documents why greedy <= first-fit is a strict-only oracle
#: leg, not a theorem.
COUNTEREXAMPLE_SEED = 19


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = GraphFuzzer(7).graph()
        b = GraphFuzzer(7).graph()
        assert a.summary() == b.summary()

    def test_different_seeds_differ(self):
        summaries = {GraphFuzzer(s).graph().summary() for s in range(8)}
        assert len(summaries) > 1

    def test_max_ops_bounds_size(self):
        small = GraphFuzzer(3).graph(max_ops=2)
        large = GraphFuzzer(3).graph(max_ops=DEFAULT_MAX_OPS)
        assert len(small.nodes) < len(large.nodes)


class TestValidity:
    @pytest.mark.parametrize("seed", range(10))
    def test_graphs_schedule_and_plan(self, seed):
        graph = GraphFuzzer(seed).graph()
        schedule = TrainingSchedule(graph)
        plan = build_memory_plan(graph, schedule)
        assert plan.tensors
        from repro.layers import SoftmaxCrossEntropy

        assert isinstance(graph.node(graph.output_id).layer,
                          SoftmaxCrossEntropy)

    def test_fuzz_graphs_yields_pairs(self):
        pairs = list(fuzz_graphs(range(3), max_ops=4))
        assert [s for s, _ in pairs] == [0, 1, 2]
        for seed, graph in pairs:
            assert graph.name == f"fuzz_{seed}"

    def test_small_budgets_always_valid(self):
        # The minimizer replays every size from 1 up; each must build.
        for k in range(1, 8):
            graph = GraphFuzzer(11).graph(max_ops=k)
            TrainingSchedule(graph)


class TestRecurrentGenre:
    def test_same_seed_same_graph(self):
        a = GraphFuzzer(7).graph(recurrent_shapes=True)
        b = GraphFuzzer(7).graph(recurrent_shapes=True)
        assert a.summary() == b.summary()

    def test_genre_does_not_perturb_default_stream(self):
        # Opting into recurrent shapes must not shift the decision
        # stream of the default genre at the same seed.
        before = GraphFuzzer(5).graph().summary()
        GraphFuzzer(5).graph(recurrent_shapes=True)
        assert GraphFuzzer(5).graph().summary() == before

    @pytest.mark.parametrize("seed", range(5))
    def test_recurrent_graphs_verify_clean(self, seed):
        graph = GraphFuzzer(seed).graph(recurrent_shapes=True)
        assert any(n.kind in ("lstm_step", "rnn_step") for n in graph.nodes)
        assert verify_graph(graph, seed) == []


class TestGreedyCounterexample:
    def test_seed_19_greedy_loses_to_first_fit(self):
        graph = GraphFuzzer(COUNTEREXAMPLE_SEED).graph()
        tensors = build_memory_plan(graph, TrainingSchedule(graph)).tensors
        greedy = StaticAllocator(POLICY_GREEDY_SIZE).allocate(tensors)
        first_fit = StaticAllocator(POLICY_FIRST_FIT).allocate(tensors)
        assert greedy.total_bytes > first_fit.total_bytes

    def test_strict_leg_fires_only_under_strict(self):
        totals = {"greedy-size": 110, "first-fit": 100, "none": 200}
        assert check_policy_bounds(totals, 110, 100, 90) == []
        strict = check_policy_bounds(totals, 110, 100, 90, strict=True)
        assert len(strict) == 1
        assert "greedy-size" in strict[0].detail

    def test_default_battery_accepts_counterexample(self):
        graph = GraphFuzzer(COUNTEREXAMPLE_SEED).graph()
        assert verify_graph(graph, COUNTEREXAMPLE_SEED) == []
