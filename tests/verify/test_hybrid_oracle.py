"""Fault-injection tests for the hybrid plan-safety oracle.

A clean planner output must produce zero violations; each deliberately
corrupted plan field must trip exactly the matching check.  Corruptions
are applied to deep copies (liveness faults) or via dataclasses.replace
(metadata faults) so the pristine module-scoped plan stays reusable.
"""

import copy
import dataclasses

import pytest

from repro.core.policy import HybridPolicy, STRATEGY_RECOMPUTE
from repro.memory import CHOICE_RECOMPUTE, build_hybrid_plan
from repro.models import scaled_vgg
from repro.verify import ORACLE_HYBRID, check_hybrid_plan


@pytest.fixture(scope="module")
def hybrid():
    return build_hybrid_plan(scaled_vgg(batch_size=8))


@pytest.fixture(scope="module")
def recompute_plan():
    plan = build_hybrid_plan(
        scaled_vgg(batch_size=8),
        HybridPolicy(strategy=STRATEGY_RECOMPUTE, cost_budget_frac=0.3),
    )
    assert plan.recompute_directives()
    return plan


def violations_of(plan):
    out = check_hybrid_plan(plan)
    assert all(v.oracle == ORACLE_HYBRID for v in out)
    return [v.detail for v in out]


class TestCleanPlans:
    def test_planner_output_is_clean(self, hybrid, recompute_plan):
        assert check_hybrid_plan(hybrid) == []
        assert check_hybrid_plan(recompute_plan) == []


class TestFaultInjection:
    def test_budget_overrun_detected(self, hybrid):
        bad = dataclasses.replace(hybrid, total_cost_s=hybrid.budget_s * 2)
        assert any("exceeds budget" in d for d in violations_of(bad))

    def test_dominance_break_detected(self, hybrid):
        bad = dataclasses.replace(
            hybrid, pure_footprints={"gist": hybrid.allocated_bytes - 1}
        )
        assert any("pure-gist" in d for d in violations_of(bad))

    def test_broken_chain_detected(self, recompute_plan):
        nid, decision = next(
            (n, d) for n, d in recompute_plan.decisions.items()
            if d.choice == CHOICE_RECOMPUTE
        )
        decisions = dict(recompute_plan.decisions)
        decisions[nid] = dataclasses.replace(
            decision, chain=decision.chain + (decision.chain[0],)
        )
        bad = dataclasses.replace(recompute_plan, decisions=decisions)
        assert any("does not end at the target" in d
                   for d in violations_of(bad))

    def test_unlinked_chain_detected(self, recompute_plan):
        nid, decision = next(
            (n, d) for n, d in recompute_plan.decisions.items()
            if d.choice == CHOICE_RECOMPUTE
        )
        decisions = dict(recompute_plan.decisions)
        # A source that is not the first chain member's input breaks the
        # link-validity walk.
        decisions[nid] = dataclasses.replace(
            decision, source_id=recompute_plan.graph.output_id
        )
        bad = dataclasses.replace(recompute_plan, decisions=decisions)
        assert any("expected" in d for d in violations_of(bad))

    def test_lossy_source_detected(self, recompute_plan):
        nid, decision = next(
            (n, d) for n, d in recompute_plan.decisions.items()
            if d.choice == CHOICE_RECOMPUTE
        )
        source = recompute_plan.graph.node(decision.source_id)
        decisions = dict(recompute_plan.decisions)
        # Forge a DPR decision onto the source: replays would read
        # rounded values, which the lossy-ancestor guard must reject.
        decisions[decision.source_id] = dataclasses.replace(
            decision, node_id=decision.source_id, node_name=source.name,
            choice="gist", encoding="dpr", lossless=False,
            source_id=None, chain=(),
        )
        bad = dataclasses.replace(recompute_plan, decisions=decisions)
        assert any("inexact or missing values" in d
                   for d in violations_of(bad))

    def test_early_replacement_death_detected(self, hybrid):
        bad = copy.deepcopy(hybrid)
        victim = next(
            t for t in bad.plan.tensors
            if t.spec.name.endswith((".out.enc", ".out.prefetch",
                                     ".out.recomp"))
        )
        victim.death = victim.birth - 1
        assert any("before the last backward use" in d
                   for d in violations_of(bad))

    def test_truncated_fp32_lifetime_detected(self, hybrid):
        bad = copy.deepcopy(hybrid)
        victim = next(
            t for t in bad.plan.tensors
            if t.spec.name.endswith(".out") and t.death > 0
        )
        victim.death = -1
        assert any("before its last" in d for d in violations_of(bad))

    def test_missing_replacement_detected(self, hybrid):
        bad = copy.deepcopy(hybrid)
        victim = next(
            t for t in bad.plan.tensors
            if t.spec.name.endswith((".out.enc", ".out.prefetch",
                                     ".out.recomp"))
        )
        bad.plan.tensors.remove(victim)
        assert any("no replacement tensor" in d for d in violations_of(bad))
