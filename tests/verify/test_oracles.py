"""Fault-injection tests: corrupt one artifact, assert the matching
oracle — and only that oracle — fires.

Each oracle is a pure function over finished artifacts, so these tests
can manufacture precisely one defect (an aliased group, a premature
death, a lying size model, a broken codec) and check both directions:
the clean artifact passes, the corrupted one is caught.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.policy import GistConfig
from repro.core.schedule_builder import build_gist_plan
from repro.encodings.base import IdentityEncoding
from repro.encodings.dpr import dpr_encoding
from repro.encodings.groupquant import GroupQuantEncoding
from repro.graph.liveness import ROLE_ENCODED, ROLE_FEATURE_MAP, LiveTensor
from repro.memory.allocator import (
    AllocationGroup,
    AllocationResult,
    StaticAllocator,
)
from repro.memory.planner import build_memory_plan
from repro.tensor.spec import TensorSpec
from repro.verify import (
    ORACLE_ALLOCATOR_SAFETY,
    ORACLE_DECISION_BYTES,
    ORACLE_PLAN_SAFETY,
    ORACLE_POLICY_BOUNDS,
    ORACLE_ROUNDTRIP,
    check_allocator_safety,
    check_decision_bytes,
    check_measured_bytes,
    check_plan_safety,
    check_policy_bounds,
    check_roundtrip,
    interval_clique_bound,
)


def _tensor(name, birth, death, n=8, shareable=True):
    return LiveTensor(TensorSpec(name, (n,)), birth, death, 0,
                      ROLE_FEATURE_MAP, shareable=shareable)


class TestAllocatorSafetyOracle:
    def test_clean_allocation_passes(self, tiny_graph):
        tensors = build_memory_plan(tiny_graph).tensors
        result = StaticAllocator().allocate(tensors)
        assert check_allocator_safety(result, tensors) == []

    def test_aliased_group_fires(self):
        a, b = _tensor("a", 0, 5), _tensor("b", 3, 8)  # overlap at [3, 5]
        result = AllocationResult([AllocationGroup([a, b])], "greedy-size")
        violations = check_allocator_safety(result, [a, b])
        assert [v.oracle for v in violations] == [ORACLE_ALLOCATOR_SAFETY]
        assert "aliases live tensors" in violations[0].detail

    def test_touching_endpoints_alias(self):
        # Inclusive intervals: death == birth is still co-live.
        a, b = _tensor("a", 0, 4), _tensor("b", 4, 8)
        result = AllocationResult([AllocationGroup([a, b])], "greedy-size")
        assert check_allocator_safety(result, [a, b])

    def test_dropped_tensor_fires(self):
        a, b = _tensor("a", 0, 2), _tensor("b", 5, 8)
        result = AllocationResult([AllocationGroup([a])], "greedy-size")
        violations = check_allocator_safety(result, [a, b])
        assert any("appears in 0 groups" in v.detail for v in violations)

    def test_duplicated_tensor_fires(self):
        a, b = _tensor("a", 0, 2), _tensor("b", 5, 8)
        result = AllocationResult(
            [AllocationGroup([a, b]), AllocationGroup([a])], "greedy-size"
        )
        violations = check_allocator_safety(result, [a, b])
        assert any("appears in 2 groups" in v.detail for v in violations)

    def test_non_shareable_in_shared_group_fires(self):
        a = _tensor("a", 0, 2, shareable=False)
        b = _tensor("b", 5, 8)
        result = AllocationResult([AllocationGroup([a, b])], "greedy-size")
        violations = check_allocator_safety(result, [a, b])
        assert any("non-shareable" in v.detail for v in violations)


class TestPolicyBoundsOracle:
    GOOD = {"greedy-size": 100, "first-fit": 120, "none": 200}

    def test_consistent_totals_pass(self):
        assert check_policy_bounds(self.GOOD, 100, 90, 80) == []

    def test_sharing_worse_than_none_fires(self):
        totals = dict(self.GOOD, none=99)
        violations = check_policy_bounds(totals, 100, 90, 80)
        assert {v.oracle for v in violations} == {ORACLE_POLICY_BOUNDS}
        assert len(violations) == 2  # both sharing policies exceed none

    def test_static_below_dynamic_peak_fires(self):
        violations = check_policy_bounds(self.GOOD, 100, 150, 80)
        assert any("dynamic peak" in v.detail for v in violations)

    def test_dynamic_below_clique_fires(self):
        violations = check_policy_bounds(self.GOOD, 100, 90, 95)
        assert any("clique" in v.detail for v in violations)

    def test_clique_bound_matches_hand_computation(self):
        tensors = [_tensor("a", 0, 3, n=4), _tensor("b", 2, 5, n=6),
                   _tensor("c", 4, 7, n=2)]
        # Peak co-liveness: at t=2 {a,b} = 40 B; at t=4 {b,c} = 32 B.
        assert interval_clique_bound(tensors) == 40


class TestPlanSafetyOracle:
    @pytest.fixture()
    def plan(self, tiny_graph):
        return build_gist_plan(tiny_graph, GistConfig())

    def test_clean_plan_passes(self, plan):
        assert check_plan_safety(plan) == []

    def test_premature_encoded_death_fires(self, plan):
        victim = next(t for t in plan.plan.tensors
                      if t.role == ROLE_ENCODED
                      and t.spec.name.endswith(".enc"))
        original = victim.death
        victim.death = victim.birth
        try:
            violations = check_plan_safety(plan)
        finally:
            victim.death = original
        assert violations
        assert all(v.oracle == ORACLE_PLAN_SAFETY for v in violations)
        assert any("dies at" in v.detail for v in violations)

    def test_premature_feature_map_death_fires(self, plan):
        # Kill a stashed FP32 map at its own birth: it can no longer reach
        # its last forward consumer.
        nid = next(iter(plan.decisions))
        victim = next(t for t in plan.plan.tensors
                      if t.node_id == nid and t.role == ROLE_FEATURE_MAP
                      and not t.spec.name.endswith(".dec"))
        original = victim.death
        victim.death = victim.birth
        try:
            violations = check_plan_safety(plan)
        finally:
            victim.death = original
        assert any("last" in v.detail and "forward use" in v.detail
                   for v in violations)

    def test_oversized_encoding_fires(self, plan):
        nid = next(iter(plan.decisions))
        decision = plan.decisions[nid]
        plan.decisions[nid] = dataclasses.replace(
            decision, encoded_bytes=decision.fp32_bytes + 1
        )
        try:
            violations = check_plan_safety(plan)
        finally:
            plan.decisions[nid] = decision
        assert any("larger than the FP32 map" in v.detail
                   for v in violations)

    def test_lossless_footprint_regression_fires(self, tiny_graph):
        plan = build_gist_plan(tiny_graph, GistConfig.lossless())
        from repro.graph.liveness import ROLE_DECODED, ROLE_FEATURE_MAP

        added = sum(t.size_bytes for t in plan.plan.tensors
                    if t.role in (ROLE_ENCODED, ROLE_DECODED))
        # Mirror the oracle's slack: inplace-merged producers (no
        # feature-map tensor of their own) may perturb the greedy
        # allocator's grouping by up to their own buffer size.
        with_fm = {t.node_id for t in plan.plan.tensors
                   if t.role == ROLE_FEATURE_MAP
                   and not t.spec.name.endswith(".dec")}
        for node in tiny_graph.nodes:
            if node.node_id not in with_fm:
                added += 4 * int(np.prod(node.output_shape))
        assert check_plan_safety(
            plan, baseline_allocated=1000, gist_allocated=1000 + added
        ) == []
        violations = check_plan_safety(
            plan, baseline_allocated=1000, gist_allocated=1001 + added
        )
        assert any("lossless Gist allocated" in v.detail for v in violations)


class TestDecisionBytesOracle:
    def test_clean_plan_passes(self, tiny_graph):
        plan = build_gist_plan(tiny_graph, GistConfig())
        assert plan.decisions  # the oracle must actually exercise codecs
        assert check_decision_bytes(plan, np.random.default_rng(0)) == []

    def test_mispriced_decision_fires(self, tiny_graph):
        plan = build_gist_plan(tiny_graph, GistConfig())
        nid = next(iter(plan.decisions))
        decision = plan.decisions[nid]
        plan.decisions[nid] = dataclasses.replace(
            decision, encoded_bytes=decision.encoded_bytes - 1
        )
        violations = check_decision_bytes(plan, np.random.default_rng(0))
        assert [v.oracle for v in violations] == [ORACLE_DECISION_BYTES]
        assert decision.node_name in violations[0].detail


class _CorruptDecode(IdentityEncoding):
    """Lossless codec whose decode flips one value."""

    def decode(self, encoded):
        out = super().decode(encoded).copy()
        if out.size:
            out.flat[0] += 1.0
        return out


class _Crasher(IdentityEncoding):
    def encode(self, x):
        raise RuntimeError("boom")


class _LyingSizeModel(IdentityEncoding):
    def encoded_bytes(self, num_elements, **ctx):
        return super().encoded_bytes(num_elements, **ctx) + 4


class TestRoundtripOracle:
    def test_honest_codecs_pass(self, rng):
        x = rng.normal(0, 1, 123).astype(np.float32)
        for codec in (IdentityEncoding(), dpr_encoding("fp16"),
                      GroupQuantEncoding(4, group_size=32)):
            assert check_roundtrip(codec, x) == []
            assert check_measured_bytes(codec, x) == []

    def test_corrupt_lossless_decode_fires(self, rng):
        x = rng.normal(0, 1, 16).astype(np.float32)
        violations = check_roundtrip(_CorruptDecode(), x)
        assert [v.oracle for v in violations] == [ORACLE_ROUNDTRIP]
        assert "not bit-exact" in violations[0].detail

    def test_crash_is_a_finding(self):
        violations = check_roundtrip(_Crasher(), np.ones(4, np.float32))
        assert len(violations) == 1
        assert "crashed" in violations[0].detail

    def test_lying_size_model_fires(self, rng):
        x = rng.normal(0, 1, 32).astype(np.float32)
        violations = check_measured_bytes(_LyingSizeModel(), x)
        assert len(violations) == 1
        assert "static model" in violations[0].detail

    def test_dpr_out_of_bound_error_fires(self, rng):
        # An fp16 codec claiming fp8's wide tolerance would pass; the
        # reverse — fp8 data checked against the fp16 bound — must fail.
        x = rng.normal(0, 1, 256).astype(np.float32)
        fp8 = dpr_encoding("fp8")
        decoded = fp8.decode(fp8.encode(x))
        from repro.verify.oracles import _check_dpr_bound
        from repro.dtypes import FP16

        assert _check_dpr_bound("fp8-as-fp16", FP16, x, decoded)

    def test_padding_skewed_grid_fires(self):
        # Reconstruct the original bug: quantisation grid stretched to
        # include the zero padding of the ragged tail group.
        skewed = GroupQuantEncoding(4, group_size=256)
        x = np.linspace(5, 6, 300, dtype=np.float32)
        encoded = skewed.encode(x)
        # Re-derive what the buggy encoder produced: tail group scaled
        # over [0, max] instead of [min, max].
        tail = x[256:]
        levels = 15
        scale = tail.max() / levels
        bad = np.round(tail / scale) * scale
        decoded = skewed.decode(encoded).copy()
        decoded[256:] = bad
        from repro.verify.oracles import _check_groupquant_bound

        violations = _check_groupquant_bound(skewed, x, encoded, decoded)
        assert violations
        assert "padding-skewed grid" in violations[0].detail
