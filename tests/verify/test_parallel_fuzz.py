"""Parallel fuzzing: worker-count invariance, crash tolerance, resume."""

import json

import pytest

from repro.cli import main
from repro.ioutil import read_jsonl
from repro.verify import (
    fuzz_work_units,
    merge_fuzz_results,
    run_fuzz,
    run_fuzz_unit,
)


def _report_bytes(report):
    return json.dumps(report.to_json(), sort_keys=True)


class TestWorkerInvariance:
    def test_clean_batch_byte_identical(self):
        serial = run_fuzz(10, stop_on_first=False, workers=1)
        parallel = run_fuzz(10, stop_on_first=False, workers=4)
        assert serial.ok and parallel.ok
        assert _report_bytes(serial) == _report_bytes(parallel)

    def test_violating_batch_byte_identical_with_stop_on_first(self):
        from tests.verify.test_fuzzer import COUNTEREXAMPLE_SEED

        # A seed range straddling the known strict-mode counterexample:
        # both runs must stop at the same first failing seed, verify the
        # same count of earlier seeds, and minimize the same graph.
        kwargs = dict(start_seed=COUNTEREXAMPLE_SEED - 3, strict=True,
                      stop_on_first=True)
        serial = run_fuzz(8, workers=1, **kwargs)
        parallel = run_fuzz(8, workers=4, **kwargs)
        assert not serial.ok
        assert serial.violations[0].seed == COUNTEREXAMPLE_SEED
        assert serial.seeds_run == 4 and serial.graphs_verified == 3
        assert serial.minimized is not None
        assert _report_bytes(serial) == _report_bytes(parallel)


class TestCrashTolerance:
    def test_unit_failure_recorded_with_payload_batch_survives(
            self, monkeypatch):
        import repro.verify.runner as runner

        real = runner.verify_seed

        def sabotaged(seed, max_ops, strict=False, rewrite_shapes=False,
                      recurrent_shapes=False):
            if seed == 1:
                raise RuntimeError("injected verifier crash")
            return real(seed, max_ops, strict=strict,
                        rewrite_shapes=rewrite_shapes,
                        recurrent_shapes=recurrent_shapes)

        monkeypatch.setattr(runner, "verify_seed", sabotaged)
        report = run_fuzz(3, stop_on_first=False, workers=1, retries=0)
        assert not report.ok
        assert report.seeds_run == 3 and report.graphs_verified == 2
        (failure,) = report.failed_units
        assert failure["payload"]["seed"] == 1
        assert failure["error"]["type"] == "RuntimeError"
        assert not report.violations

    def test_unit_failure_stops_batch_when_stop_on_first(self, monkeypatch):
        import repro.verify.runner as runner

        def always_broken(seed, max_ops, strict=False, rewrite_shapes=False,
                          recurrent_shapes=False):
            raise RuntimeError("injected verifier crash")

        monkeypatch.setattr(runner, "verify_seed", always_broken)
        report = run_fuzz(5, stop_on_first=True, workers=1, retries=0)
        assert report.seeds_run == 1
        assert len(report.failed_units) == 1
        assert report.minimized is None


class TestJournalResume:
    def test_completed_seeds_not_reverified(self, tmp_path, monkeypatch):
        import repro.verify.runner as runner

        journal = tmp_path / "fuzz.jsonl"
        calls = []
        real = runner.verify_seed

        def counting(seed, max_ops, strict=False, rewrite_shapes=False,
                     recurrent_shapes=False):
            calls.append(seed)
            return real(seed, max_ops, strict=strict,
                        rewrite_shapes=rewrite_shapes,
                        recurrent_shapes=recurrent_shapes)

        monkeypatch.setattr(runner, "verify_seed", counting)
        first = run_fuzz(5, stop_on_first=False, journal=str(journal))
        assert calls == [0, 1, 2, 3, 4]
        assert len(list(read_jsonl(journal))) == 5
        resumed = run_fuzz(5, stop_on_first=False, journal=str(journal))
        assert calls == [0, 1, 2, 3, 4], "resume re-verified a seed"
        assert _report_bytes(first) == _report_bytes(resumed)

    def test_journal_keyed_on_fuzz_parameters(self, tmp_path):
        journal = tmp_path / "fuzz.jsonl"
        run_fuzz(2, stop_on_first=False, journal=str(journal))
        # Same seeds under different max_ops mean different graphs: the
        # journaled results must not be replayed.
        before = len(list(read_jsonl(journal)))
        run_fuzz(2, stop_on_first=False, max_ops=3, journal=str(journal))
        assert len(list(read_jsonl(journal))) == before + 2


class TestUnitPlumbing:
    def test_unit_executor_matches_verify_seed(self):
        (unit,) = fuzz_work_units([7], max_ops=6)
        value = run_fuzz_unit(unit.payload)
        assert value == {"seed": 7, "violations": []}

    def test_merge_ignores_results_beyond_first_stopper(self):
        from repro.orchestrate import UnitResult

        units = fuzz_work_units([0, 1, 2])
        violation = {"oracle": "plan-safety", "detail": "injected",
                     "seed": 1, "subject": "t"}
        results = {
            "seed:0": UnitResult("seed:0", "ok",
                                 {"seed": 0, "violations": []}),
            "seed:1": UnitResult("seed:1", "ok",
                                 {"seed": 1, "violations": [violation]}),
            "seed:2": UnitResult("seed:2", "ok",
                                 {"seed": 2, "violations": []}),
        }
        report = merge_fuzz_results(units, results, stop_on_first=True)
        assert report.seeds_run == 2 and report.graphs_verified == 1
        assert [v.seed for v in report.violations] == [1]


@pytest.mark.fuzz
class TestParallelCli:
    def test_fuzz_workers_flag(self, capsys):
        assert main(["fuzz", "--seeds", "4", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "graphs verified: 4" in out
