"""Fault-injection tests for the recurrent-unroll oracle.

Clean unrolled LSTM/RNN columns must produce zero violations; each
deliberate corruption — duplicate owner, desynced timestep, rewired
state edge, mismatched dims, untied runtime parameters — must trip the
matching check.  Layer attributes are mutated in place and restored, so
the module-scoped graphs stay pristine.
"""

import numpy as np
import pytest

from repro.models import build_model
from repro.train.executor import GraphExecutor
from repro.verify import ORACLE_RECURRENT, check_recurrent_unroll

KWARGS = dict(batch_size=4, num_classes=4, seq_len=4,
              input_size=5, hidden_size=6)


@pytest.fixture(scope="module", params=["lstm", "rnn"])
def unrolled(request):
    graph = build_model(request.param, **KWARGS)
    return graph, GraphExecutor(graph, seed=0), f"{request.param}_step"


def violations_of(graph, executor=None):
    out = check_recurrent_unroll(graph, executor)
    assert all(v.oracle == ORACLE_RECURRENT for v in out)
    return [v.detail for v in out]


@pytest.fixture()
def restore():
    """Collect (obj, attr, value) undo records; replay them after."""
    undo = []

    def record(obj, attr):
        undo.append((obj, attr, getattr(obj, attr)))
        return obj

    yield record
    for obj, attr, value in reversed(undo):
        setattr(obj, attr, value)


def step_node(graph, kind, t):
    return next(n for n in graph.nodes
                if n.kind == kind and n.layer.t == t)


class TestCleanColumns:
    def test_registry_models_are_clean(self, unrolled):
        graph, executor, _ = unrolled
        assert check_recurrent_unroll(graph) == []
        assert check_recurrent_unroll(graph, executor) == []

    def test_graphs_without_steps_short_circuit(self):
        graph = build_model("tiny_cnn", batch_size=4)
        assert check_recurrent_unroll(graph) == []


class TestFaultInjection:
    def test_desynced_timestep_detected(self, unrolled, restore):
        graph, _, kind = unrolled
        node = restore(step_node(graph, kind, 2).layer, "t")
        node.t = 3
        details = violations_of(graph)
        assert any("duplicate timestep" in d for d in details)
        assert any("not the same cell's" in d for d in details)

    def test_mismatched_dims_detected(self, unrolled, restore):
        graph, _, kind = unrolled
        layer = step_node(graph, kind, 1).layer
        restore(layer, "hidden_size")
        layer.hidden_size = KWARGS["hidden_size"] + 1
        details = violations_of(graph)
        assert any("disagree with the shared cell" in d for d in details)

    def test_rewired_state_edge_detected(self, unrolled, restore):
        graph, _, kind = unrolled
        node = step_node(graph, kind, 3)
        restore(node, "inputs")
        # Point t=3's state input at the t=1 step: skips a timestep.
        node.inputs = [node.inputs[0], step_node(graph, kind, 1).node_id]
        details = violations_of(graph)
        assert any("t=2 step" in d for d in details)

    def test_duplicate_owner_detected(self, unrolled, restore):
        graph, _, kind = unrolled
        layer = step_node(graph, kind, 2).layer
        restore(layer, "_owns_params") if hasattr(layer, "_owns_params") \
            else None
        # owns_params derives from t on the step layers; force a second
        # owner by moving a later step to t=0 (also trips uniqueness).
        restore(layer, "t")
        layer.t = 0
        details = violations_of(graph)
        assert any("parameter owners" in d for d in details)

    def test_untied_parameter_copy_detected(self, unrolled):
        graph, _, kind = unrolled
        executor = GraphExecutor(graph, seed=1)
        nid = step_node(graph, kind, 1).node_id
        executor.params[nid]["Wx"] = executor.params[nid]["Wx"].copy()
        details = violations_of(graph, executor)
        assert any("untied" in d for d in details)

    def test_missing_parameter_detected(self, unrolled):
        graph, _, kind = unrolled
        executor = GraphExecutor(graph, seed=2)
        nid = step_node(graph, kind, 2).node_id
        executor.params[nid]["Wq"] = executor.params[nid].pop("Wx")
        details = violations_of(graph, executor)
        assert any("untied" in d for d in details)
