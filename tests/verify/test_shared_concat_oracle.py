"""Fault-injection tests for the shared-concat structural oracle.

A clean planner output must produce zero violations; each deliberately
corrupted decision or liveness field must trip exactly the matching
check.  Corruptions use ``dataclasses.replace`` on decisions (the plan's
decision dict is mutated and restored around each test) or direct edits
to deep-copied tensors, so the module-scoped plan stays pristine.
"""

import copy
import dataclasses

import pytest

from repro.core.policy import HybridPolicy, STRATEGY_SHARED_CONCAT
from repro.memory.hybrid import CHOICE_SHARED_CONCAT, build_hybrid_plan
from repro.models import build_model
from repro.verify import ORACLE_SHARED_CONCAT, check_shared_concat


@pytest.fixture(scope="module")
def plan():
    built = build_hybrid_plan(
        build_model("densenet", batch_size=4, num_classes=4, image_size=8,
                    init_channels=4, growth=4, blocks=2, block_layers=3),
        HybridPolicy(strategy=STRATEGY_SHARED_CONCAT),
    )
    assert any(d.choice == CHOICE_SHARED_CONCAT
               for d in built.decisions.values())
    return built


@pytest.fixture()
def decision(plan):
    nid = next(n for n, d in plan.decisions.items()
               if d.choice == CHOICE_SHARED_CONCAT)
    return nid, plan.decisions[nid]


def violations_of(plan):
    out = check_shared_concat(plan)
    assert all(v.oracle == ORACLE_SHARED_CONCAT for v in out)
    return [v.detail for v in out]


@pytest.fixture()
def corrupted(plan):
    """Apply a decision-table corruption, restore afterwards."""
    saved = dict(plan.decisions)

    def apply(nid, replacement=None):
        if replacement is None:
            del plan.decisions[nid]
        else:
            plan.decisions[nid] = replacement
        return violations_of(plan)

    yield apply
    plan.decisions.clear()
    plan.decisions.update(saved)


class TestCleanPlan:
    def test_planner_output_is_clean(self, plan):
        assert check_shared_concat(plan) == []

    def test_hybrid_strategy_output_is_clean(self, plan):
        hybrid = build_hybrid_plan(plan.graph)
        assert check_shared_concat(hybrid) == []


class TestFaultInjection:
    def test_truncated_chain_detected(self, corrupted, decision):
        nid, d = decision
        details = corrupted(nid, dataclasses.replace(d, chain=d.chain[:-1]))
        assert any("does not run from the member" in x for x in details)

    def test_empty_chain_detected(self, corrupted, decision):
        nid, d = decision
        details = corrupted(nid, dataclasses.replace(d, chain=()))
        assert any("does not run from the member" in x for x in details)

    def test_non_concat_chain_node_detected(self, corrupted, decision, plan):
        nid, d = decision
        # Reroute the chain through the graph input: not a concat at all.
        bad_chain = (d.chain[0], plan.graph.input_id)
        details = corrupted(nid, dataclasses.replace(
            d, chain=bad_chain, source_id=plan.graph.input_id))
        assert any("not a concat" in x for x in details)

    def test_terminal_with_own_decision_detected(self, corrupted, decision):
        nid, d = decision
        rogue = dataclasses.replace(
            d, node_id=d.source_id, node_name="terminal", choice="swap",
            source_id=None, chain=(),
        )
        details = corrupted(d.source_id, rogue)
        assert any("carries a swap decision" in x for x in details)

    def test_alias_label_drift_detected(self, plan, decision):
        nid, d = decision
        bad = copy.deepcopy(plan)
        for t in bad.plan.tensors:
            if t.node_id == nid and t.spec.name.endswith(".out"):
                t.alias_group = "concat:wrong"
        details = violations_of(bad)
        assert any("alias label" in x for x in details)

    def test_terminal_early_death_detected(self, plan, decision):
        nid, d = decision
        bad = copy.deepcopy(plan)
        for t in bad.plan.tensors:
            if t.node_id == d.source_id and t.spec.name.endswith(".out"):
                t.death = t.birth
        details = violations_of(bad)
        assert any("dies at" in x for x in details)
